// Package wire implements the minimal deterministic binary encoding used by
// the model snapshot codec (sgf.FittedModel.Encode, internal/store):
// unsigned and zig-zag varints, IEEE-754 float bits in little-endian order,
// and length-prefixed strings and slices.
//
// Two properties matter to its callers. Encoding is a pure function of the
// values written — no maps are iterated, no pointers or timestamps leak in —
// so the same model always encodes to the same bytes (snapshot checksums and
// golden-file tests rely on this). And decoding is hostile-input safe: every
// length prefix is validated against the bytes actually remaining, so a
// corrupt or adversarial payload can fail decoding but cannot drive a
// multi-gigabyte allocation.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer accumulates an encoded payload in memory. The zero value is ready
// to use. Writes never fail.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded payload. The slice is owned by the writer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Varint appends a zig-zag signed varint.
func (w *Writer) Varint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Int appends an int as a zig-zag varint.
func (w *Writer) Int(v int) { w.Varint(int64(v)) }

// Bool appends one byte: 1 for true, 0 for false.
func (w *Writer) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Float64 appends the IEEE-754 bits of f, little-endian. Encoding the bits
// (not a decimal rendering) keeps round-trips exact: decode(encode(x))
// reproduces x bit-for-bit, including -0 and NaN payloads.
func (w *Writer) Float64(f float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// BytesField appends a length-prefixed byte slice.
func (w *Writer) BytesField(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Float64s appends a length-prefixed slice of floats.
func (w *Writer) Float64s(v []float64) {
	w.Uvarint(uint64(len(v)))
	for _, f := range v {
		w.Float64(f)
	}
}

// Uint16s appends a length-prefixed slice of uint16s, little-endian.
func (w *Writer) Uint16s(v []uint16) {
	w.Uvarint(uint64(len(v)))
	for _, x := range v {
		w.buf = binary.LittleEndian.AppendUint16(w.buf, x)
	}
}

// Ints appends a length-prefixed slice of ints as zig-zag varints.
func (w *Writer) Ints(v []int) {
	w.Uvarint(uint64(len(v)))
	for _, x := range v {
		w.Int(x)
	}
}

// Strings appends a length-prefixed slice of length-prefixed strings.
// Callers that need deterministic encoding must sort the slice first — the
// codec preserves order, it does not impose one.
func (w *Writer) Strings(v []string) {
	w.Uvarint(uint64(len(v)))
	for _, s := range v {
		w.String(s)
	}
}

// Reader decodes a payload produced by Writer. Errors are sticky: after the
// first failure every subsequent read returns a zero value and Err reports
// the original cause, so decoders can read a whole structure and check the
// error once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over the payload.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Done returns the sticky error, or an error if unread bytes remain. Call it
// after decoding a complete structure: trailing garbage means the payload
// was not produced by the matching encoder.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes after payload", len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("truncated or malformed uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zig-zag signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("truncated or malformed varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// Int reads an int.
func (r *Reader) Int() int {
	v := r.Varint()
	if int64(int(v)) != v {
		r.fail("varint %d overflows int", v)
		return 0
	}
	return int(v)
}

// Bool reads one byte as a boolean, rejecting values other than 0 and 1.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.Remaining() < 1 {
		r.fail("truncated bool at offset %d", r.off)
		return false
	}
	b := r.buf[r.off]
	r.off++
	if b > 1 {
		r.fail("invalid bool byte %d at offset %d", b, r.off-1)
		return false
	}
	return b == 1
}

// Float64 reads IEEE-754 bits written by Writer.Float64.
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail("truncated float64 at offset %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

// length reads a count prefix and validates it against the remaining bytes,
// assuming each element occupies at least elemSize bytes. This bounds every
// allocation by the input size.
func (r *Reader) length(elemSize int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.Remaining()/elemSize) {
		r.fail("length %d exceeds remaining %d bytes (elem size %d)", n, r.Remaining(), elemSize)
		return 0
	}
	return int(n)
}

// ReadString reads a length-prefixed string (named to avoid accidentally
// implementing fmt.Stringer, which would make printing a Reader consume
// data).
func (r *Reader) ReadString() string {
	n := r.length(1)
	if r.err != nil {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// BytesField reads a length-prefixed byte slice. The returned slice aliases
// the reader's buffer.
func (r *Reader) BytesField() []byte {
	n := r.length(1)
	if r.err != nil {
		return nil
	}
	b := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

// Float64s reads a length-prefixed slice of floats.
func (r *Reader) Float64s() []float64 {
	n := r.length(8)
	if r.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}

// Uint16s reads a length-prefixed slice of uint16s.
func (r *Reader) Uint16s() []uint16 {
	n := r.length(2)
	if r.err != nil {
		return nil
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(r.buf[r.off:])
		r.off += 2
	}
	return out
}

// Ints reads a length-prefixed slice of ints.
func (r *Reader) Ints() []int {
	n := r.length(1)
	if r.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Int()
	}
	return out
}

// ReadStrings reads a length-prefixed slice of strings written by Strings.
// Each element carries at least its own one-byte length prefix, so the
// count is bounded by the remaining input like every other length.
func (r *Reader) ReadStrings() []string {
	n := r.length(1)
	if r.err != nil {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.ReadString()
		if r.err != nil {
			return nil
		}
	}
	return out
}
