package wire

import (
	"testing"
)

// FuzzReader drives every Reader accessor over arbitrary bytes. The codec
// underlies each model snapshot (and with it every import upload), so the
// contract under hostile input is: record an error and return zero values —
// never panic, and never allocate more than the input's own size allows
// (the length() guard). The read sequence deliberately mixes scalar and
// length-prefixed kinds so forged length prefixes land in front of every
// accessor.
func FuzzReader(f *testing.F) {
	// Seed with a well-formed record covering every kind, so the fuzzer
	// starts mutating valid structure instead of guessing it.
	w := &Writer{}
	w.Uvarint(7)
	w.Varint(-42)
	w.Int(123456)
	w.Bool(true)
	w.Float64(3.14)
	w.String("seed")
	w.BytesField([]byte{1, 2, 3})
	w.Float64s([]float64{1.5, -2.5})
	w.Uint16s([]uint16{0, 65535})
	w.Ints([]int{-1, 0, 99})
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // max uvarint

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		_ = r.Uvarint()
		_ = r.Varint()
		_ = r.Int()
		_ = r.Bool()
		_ = r.Float64()
		_ = r.ReadString()
		_ = r.BytesField()
		_ = r.Float64s()
		_ = r.Uint16s()
		_ = r.Ints()
		if err := r.Err(); err != nil {
			// Errors must be sticky: once failed, every further read keeps
			// the first error and consumes nothing.
			before := r.Remaining()
			_ = r.Uvarint()
			if r.Remaining() != before {
				t.Fatal("failed reader consumed input")
			}
			if r.Err() != err {
				t.Fatalf("error not sticky: %v -> %v", err, r.Err())
			}
			return
		}
		_ = r.Done()
	})
}
