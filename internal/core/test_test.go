package core

import (
	"math"
	"testing"

	"repro/internal/bayesnet"
	"repro/internal/dataset"
	"repro/internal/rng"
)

func TestPartitionIndexKnownValues(t *testing.T) {
	gamma := 2.0
	cases := []struct {
		p    float64
		want int
	}{
		{1, 0},
		{0.75, 0},
		{0.5, 1},  // p = γ^-1 belongs to partition 1 (γ^-2 < p ≤ γ^-1)
		{0.3, 1},  // γ^-2=0.25 < 0.3 ≤ 0.5
		{0.25, 2}, // p = γ^-2
		{0.2, 2},
		{1.0000000001, 0}, // floating-point dust clamps to 0
	}
	for _, c := range cases {
		got, ok := PartitionIndex(c.p, gamma)
		if !ok {
			t.Fatalf("PartitionIndex(%g) not ok", c.p)
		}
		if got != c.want {
			t.Errorf("PartitionIndex(%g, 2) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestPartitionIndexInvalid(t *testing.T) {
	for _, p := range []float64{0, -1, math.NaN()} {
		if _, ok := PartitionIndex(p, 2); ok {
			t.Errorf("PartitionIndex(%g) reported ok", p)
		}
	}
}

func TestPartitionIndexLaw(t *testing.T) {
	// Property: for every positive p ≤ 1, γ^(−i−1) < p ≤ γ^(−i).
	r := rng.New(1)
	for _, gamma := range []float64{1.5, 2, 4} {
		for trial := 0; trial < 2000; trial++ {
			p := math.Exp(-r.Float64() * 30) // spans ~13 orders of magnitude
			i, ok := PartitionIndex(p, gamma)
			if !ok {
				t.Fatalf("PartitionIndex(%g) not ok", p)
			}
			lo := math.Pow(gamma, -float64(i+1))
			hi := math.Pow(gamma, -float64(i))
			if !(lo < p && p <= hi*(1+1e-12)) {
				t.Fatalf("γ=%g p=%g: partition %d bounds (%g, %g] violated", gamma, p, i, lo, hi)
			}
		}
	}
}

func TestTestConfigValidate(t *testing.T) {
	bad := []TestConfig{
		{K: 0, Gamma: 2},
		{K: 5, Gamma: 1},
		{K: 5, Gamma: 0.5},
		{K: 5, Gamma: 2, Randomized: true},
		{K: 5, Gamma: 2, MaxPlausible: 3},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated: %+v", i, cfg)
		}
	}
	good := TestConfig{K: 5, Gamma: 2, Randomized: true, Eps0: 1, MaxPlausible: 10, MaxCheckPlausible: 100}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunTestAgainstExhaustiveCount(t *testing.T) {
	model := tinyModel(t, 20)
	syn, err := NewSeedSynthesizer(model, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	seeds := tinySeeds(t, model, 300, 21)
	r := rng.New(22)
	for trial := 0; trial < 100; trial++ {
		seed := seeds.Row(r.Intn(seeds.Len()))
		y := syn.Generate(seed, r)
		p := syn.GenProb(y, seed)
		full := CountPlausibleSeeds(syn, seeds, y, p, 2)
		for _, k := range []int{1, full, full + 1, full * 2} {
			if k < 1 {
				continue
			}
			res, err := RunTest(syn, seeds, seed, y, TestConfig{K: k, Gamma: 2}, r)
			if err != nil {
				t.Fatal(err)
			}
			wantPass := full >= k
			if res.Pass != wantPass {
				t.Fatalf("k=%d full=%d: pass=%v, want %v", k, full, res.Pass, wantPass)
			}
		}
	}
}

// TestDeterministicTestImpliesDefinition1 is the central soundness property:
// anything Privacy Test 1 passes satisfies (k, γ)-plausible deniability per
// Definition 1, verified by the independent sliding-window checker.
func TestDeterministicTestImpliesDefinition1(t *testing.T) {
	model := tinyModel(t, 23)
	for _, omegaRange := range [][2]int{{1, 1}, {1, 3}} {
		syn, err := NewSeedSynthesizer(model, omegaRange[0], omegaRange[1])
		if err != nil {
			t.Fatal(err)
		}
		seeds := tinySeeds(t, model, 400, 24)
		r := rng.New(25)
		passes := 0
		for trial := 0; trial < 300; trial++ {
			seed := seeds.Row(r.Intn(seeds.Len()))
			y := syn.Generate(seed, r)
			cfg := TestConfig{K: 20, Gamma: 3}
			res, err := RunTest(syn, seeds, seed, y, cfg, r)
			if err != nil {
				t.Fatal(err)
			}
			if res.Pass {
				passes++
				if !IsPlausiblyDeniable(syn, seeds, seed, y, cfg.K, cfg.Gamma) {
					t.Fatalf("released record %v violates Definition 1 (seed %v)", y, seed)
				}
			}
		}
		if passes == 0 {
			t.Fatalf("omega %v: no candidate ever passed; test vacuous", omegaRange)
		}
	}
}

func TestRandomizedTestApproachesDeterministic(t *testing.T) {
	// With a huge ε0 the Laplace noise on k is negligible, so Privacy
	// Test 2 must agree with Privacy Test 1.
	model := tinyModel(t, 26)
	syn, err := NewSeedSynthesizer(model, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	seeds := tinySeeds(t, model, 300, 27)
	r := rng.New(28)
	for trial := 0; trial < 100; trial++ {
		seed := seeds.Row(r.Intn(seeds.Len()))
		y := syn.Generate(seed, r)
		det, err := RunTest(syn, seeds, seed, y, TestConfig{K: 15, Gamma: 2}, rng.New(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		rnd, err := RunTest(syn, seeds, seed, y,
			TestConfig{K: 15, Gamma: 2, Randomized: true, Eps0: 1e6}, rng.New(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if det.Pass != rnd.Pass {
			t.Fatalf("trial %d: deterministic=%v randomized(ε0→∞)=%v", trial, det.Pass, rnd.Pass)
		}
	}
}

func TestRandomizedTestThresholdVaries(t *testing.T) {
	model := tinyModel(t, 29)
	syn, err := NewSeedSynthesizer(model, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	seeds := tinySeeds(t, model, 100, 30)
	seed := seeds.Row(0)
	y := syn.Generate(seed, rng.New(31))
	thresholds := map[float64]bool{}
	for trial := 0; trial < 50; trial++ {
		res, err := RunTest(syn, seeds, seed, y,
			TestConfig{K: 10, Gamma: 2, Randomized: true, Eps0: 0.5}, rng.New(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		thresholds[res.Threshold] = true
	}
	if len(thresholds) < 10 {
		t.Fatalf("randomized threshold took only %d distinct values", len(thresholds))
	}
}

func TestMaxCheckPlausibleCapsScan(t *testing.T) {
	model := tinyModel(t, 32)
	syn, err := NewSeedSynthesizer(model, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	seeds := tinySeeds(t, model, 500, 33)
	seed := seeds.Row(0)
	y := syn.Generate(seed, rng.New(34))
	res, err := RunTest(syn, seeds, seed, y,
		TestConfig{K: 100000, Gamma: 2, MaxCheckPlausible: 50}, rng.New(35))
	if err != nil {
		t.Fatal(err)
	}
	if res.Checked > 50 {
		t.Fatalf("checked %d records, cap was 50", res.Checked)
	}
	if res.Pass {
		t.Fatal("test passed with k larger than the dataset")
	}
}

func TestMaxPlausibleStopsEarly(t *testing.T) {
	// The marginal synthesizer makes every record a plausible seed, so the
	// count should stop exactly at MaxPlausible (≥ threshold met first,
	// whichever comes sooner).
	model := tinyModel(t, 36)
	marg := marginalSynth(t, model)
	seeds := tinySeeds(t, model, 500, 37)
	seed := seeds.Row(0)
	y := marg.Generate(seed, rng.New(38))
	res, err := RunTest(marg, seeds, seed, y,
		TestConfig{K: 10, Gamma: 2, MaxPlausible: 25}, rng.New(39))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatal("marginal candidate failed the test")
	}
	if res.PlausibleCount > 25 {
		t.Fatalf("counted %d plausible seeds past the cap", res.PlausibleCount)
	}
	// It must stop at the threshold k=10, which binds before the cap.
	if res.PlausibleCount != 10 {
		t.Fatalf("counted %d, expected to stop at threshold 10", res.PlausibleCount)
	}
}

// marginalSynth learns a marginal model from samples of the given model and
// wraps it in a MarginalSynthesizer.
func marginalSynth(t testing.TB, model *bayesnet.Model) *MarginalSynthesizer {
	t.Helper()
	margModel, err := bayesnet.LearnModel(
		tinySeeds(t, model, 1000, 77), model.Bkt,
		bayesnet.MarginalStructure(model.Meta), bayesnet.ModelConfig{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	syn, err := NewMarginalSynthesizer(margModel)
	if err != nil {
		t.Fatal(err)
	}
	return syn
}

func TestRunTestEmptyDataset(t *testing.T) {
	model := tinyModel(t, 40)
	syn, err := NewSeedSynthesizer(model, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	empty := dataset.New(model.Meta)
	_, err = RunTest(syn, empty, dataset.Record{0, 0, 0}, dataset.Record{0, 0, 0},
		TestConfig{K: 1, Gamma: 2}, rng.New(1))
	if err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestIsPlausiblyDeniableDirect(t *testing.T) {
	model := tinyModel(t, 41)
	syn, err := NewSeedSynthesizer(model, 3, 3) // ω = m: fully re-sampled
	if err != nil {
		t.Fatal(err)
	}
	seeds := tinySeeds(t, model, 50, 42)
	seed := seeds.Row(0)
	y := syn.Generate(seed, rng.New(43))
	// With ω = m every record has the same generation probability, so
	// (k, γ)-PD holds for k = |D| and any γ > 1.
	if !IsPlausiblyDeniable(syn, seeds, seed, y, seeds.Len(), 1.01) {
		t.Fatal("fully re-sampled synthesis should be maximally deniable")
	}
	if IsPlausiblyDeniable(syn, seeds, seed, y, seeds.Len()+1, 1.01) {
		t.Fatal("k beyond dataset size should fail")
	}
	if IsPlausiblyDeniable(syn, seeds, seed, y, 0, 2) {
		t.Fatal("k=0 should be rejected")
	}
}
