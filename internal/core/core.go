package core
