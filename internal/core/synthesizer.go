// Package core implements the paper's primary contribution: plausible
// deniability as a privacy criterion for data synthesis (§2).
//
// It provides the seed-based generative synthesis of §3.2 with exact
// generation probabilities Pr{y = M(d)}, the marginal baseline, the
// (k, γ)-plausible deniability criterion of Definition 1, the deterministic
// Privacy Test 1 and the randomized Privacy Test 2 (whose composition with
// Mechanism 1 is (ε, δ)-differentially private by Theorem 1), Mechanism 1
// itself, and an embarrassingly parallel generation pipeline mirroring the
// tool of §5.
package core

import (
	"fmt"

	"repro/internal/bayesnet"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// Synthesizer is a probabilistic generative model M that transforms a seed
// record into a synthetic record, with computable generation probabilities.
type Synthesizer interface {
	// Generate produces a synthetic record y = M(seed).
	Generate(seed dataset.Record, r *rng.RNG) dataset.Record
	// GenProb returns Pr{y = M(d)}: the probability that the model would
	// output y given seed d.
	GenProb(y, d dataset.Record) float64
	// Prober returns a function computing Pr{y = M(d)} for a fixed y.
	// Implementations precompute whatever they can for y, making repeated
	// evaluation over many candidate seeds (the plausible-seed count of the
	// privacy tests) cheap.
	Prober(y dataset.Record) func(d dataset.Record) float64
}

// SeedSynthesizer is the generative synthesis of §3.2: a synthetic record
// keeps the first m−ω attributes of its seed (in the model's dependency
// order σ) and re-samples the remaining ω attributes from the model's
// conditionals (eq. 3). ω is drawn uniformly from [OmegaLo, OmegaHi] for
// every candidate; setting OmegaLo == OmegaHi gives the fixed-ω variants of
// §6, and a proper range gives the ω ∈R [lo, hi] variants.
type SeedSynthesizer struct {
	Model   *bayesnet.Model
	OmegaLo int
	OmegaHi int
}

// NewSeedSynthesizer validates the ω range against the model width.
func NewSeedSynthesizer(model *bayesnet.Model, omegaLo, omegaHi int) (*SeedSynthesizer, error) {
	m := len(model.Meta.Attrs)
	if omegaLo < 1 || omegaHi > m || omegaLo > omegaHi {
		return nil, fmt.Errorf("core: omega range [%d,%d] invalid for %d attributes", omegaLo, omegaHi, m)
	}
	return &SeedSynthesizer{Model: model, OmegaLo: omegaLo, OmegaHi: omegaHi}, nil
}

// Generate implements eq. (3): it copies the seed, then re-samples the last
// ω attributes in σ order, each conditioned on the current (partially
// updated) record.
func (s *SeedSynthesizer) Generate(seed dataset.Record, r *rng.RNG) dataset.Record {
	m := len(seed)
	omega := s.OmegaLo + r.Intn(s.OmegaHi-s.OmegaLo+1)
	rec := seed.Clone()
	for idx := m - omega; idx < m; idx++ {
		attr := s.Model.Struct.Order[idx]
		rec[attr] = s.Model.SampleAttr(attr, rec, r)
	}
	return rec
}

// GenProb returns Pr{y = M(d)} exactly.
//
// For a fixed ω the probability factorizes as
//
//	[d and y agree on σ(1..m−ω)] · Π_{i>m−ω} Pr{y_σ(i) | parents(y)}
//
// because the copied attributes equal the seed's values and every
// re-sampled conditional reads only attributes earlier in σ, whose values
// in the partially updated record coincide with y's. For a random ω the
// probability is the uniform mixture over the range, so different seeds —
// agreeing with y on different σ-prefixes — genuinely fall into different
// γ-partitions of the privacy test.
func (s *SeedSynthesizer) GenProb(y, d dataset.Record) float64 {
	return s.Prober(y)(d)
}

// Prober precomputes, for the fixed candidate y, the conditional tail
// products and their partial mixture sums, so each seed evaluation costs
// one σ-prefix comparison plus a table lookup.
func (s *SeedSynthesizer) Prober(y dataset.Record) func(d dataset.Record) float64 {
	m := len(y)
	order := s.Model.Struct.Order
	// tail[idx] = Π_{u=idx..m-1} Pr{y_σ(u) | y}; tail[m] = 1.
	tail := make([]float64, m+1)
	tail[m] = 1
	for idx := m - 1; idx >= 0; idx-- {
		attr := order[idx]
		tail[idx] = tail[idx+1] * s.Model.CondProb(attr, y[attr], y)
	}
	// Keep positions idx = m−ω for ω ∈ [lo, hi] run over [m−hi, m−lo].
	loIdx, hiIdx := m-s.OmegaHi, m-s.OmegaLo
	// cum[j] = Σ_{idx=loIdx..j} tail[idx] for j in [loIdx, hiIdx].
	cum := make([]float64, hiIdx+1)
	run := 0.0
	for j := loIdx; j <= hiIdx; j++ {
		run += tail[j]
		cum[j] = run
	}
	weight := 1 / float64(s.OmegaHi-s.OmegaLo+1)

	return func(d dataset.Record) float64 {
		// a = length of the σ-prefix on which d and y agree.
		a := 0
		for ; a < m; a++ {
			if d[order[a]] != y[order[a]] {
				break
			}
		}
		// Seeds must agree on all kept attributes: m−ω ≤ a.
		j := a
		if j > hiIdx {
			j = hiIdx
		}
		if j < loIdx {
			return 0
		}
		return weight * cum[j]
	}
}

// MarginalSynthesizer is the baseline of §3.2: every attribute is sampled
// independently from its marginal distribution, ignoring the seed. Because
// generation is seed-independent, every record of the input dataset is an
// equally plausible seed and the privacy test always passes (§8).
type MarginalSynthesizer struct {
	Model *bayesnet.Model
}

// NewMarginalSynthesizer wraps a model learned over MarginalStructure. It
// rejects models whose graph has edges, since then per-attribute sampling
// would not be marginal sampling.
func NewMarginalSynthesizer(model *bayesnet.Model) (*MarginalSynthesizer, error) {
	if model.Struct.Graph.NumEdges() != 0 {
		return nil, fmt.Errorf("core: marginal synthesizer requires an edgeless structure")
	}
	return &MarginalSynthesizer{Model: model}, nil
}

// Generate samples every attribute from its marginal; the seed is unused.
func (s *MarginalSynthesizer) Generate(_ dataset.Record, r *rng.RNG) dataset.Record {
	return s.Model.SampleRecord(r)
}

// GenProb returns Π_i Pr{y_i}, independent of the seed.
func (s *MarginalSynthesizer) GenProb(y, _ dataset.Record) float64 {
	p := 1.0
	for attr := range s.Model.Meta.Attrs {
		p *= s.Model.CondProb(attr, y[attr], y)
	}
	return p
}

// Prober returns a constant function: all seeds are equally plausible.
func (s *MarginalSynthesizer) Prober(y dataset.Record) func(d dataset.Record) float64 {
	p := s.GenProb(y, nil)
	return func(dataset.Record) float64 { return p }
}

var (
	_ Synthesizer = (*SeedSynthesizer)(nil)
	_ Synthesizer = (*MarginalSynthesizer)(nil)
)
