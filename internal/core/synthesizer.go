// Package core implements the paper's primary contribution: plausible
// deniability as a privacy criterion for data synthesis (§2).
//
// It provides the seed-based generative synthesis of §3.2 with exact
// generation probabilities Pr{y = M(d)}, the marginal baseline, the
// (k, γ)-plausible deniability criterion of Definition 1, the deterministic
// Privacy Test 1 and the randomized Privacy Test 2 (whose composition with
// Mechanism 1 is (ε, δ)-differentially private by Theorem 1), Mechanism 1
// itself, and an embarrassingly parallel generation pipeline mirroring the
// tool of §5.
package core

import (
	"fmt"

	"repro/internal/bayesnet"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// Synthesizer is a probabilistic generative model M that transforms a seed
// record into a synthetic record, with computable generation probabilities.
type Synthesizer interface {
	// Generate produces a synthetic record y = M(seed).
	Generate(seed dataset.Record, r *rng.RNG) dataset.Record
	// GenProb returns Pr{y = M(d)}: the probability that the model would
	// output y given seed d.
	GenProb(y, d dataset.Record) float64
	// Prober returns a function computing Pr{y = M(d)} for a fixed y.
	// Implementations precompute whatever they can for y, making repeated
	// evaluation over many candidate seeds (the plausible-seed count of the
	// privacy tests) cheap.
	Prober(y dataset.Record) func(d dataset.Record) float64
}

// SeedSynthesizer is the generative synthesis of §3.2: a synthetic record
// keeps the first m−ω attributes of its seed (in the model's dependency
// order σ) and re-samples the remaining ω attributes from the model's
// conditionals (eq. 3). ω is drawn uniformly from [OmegaLo, OmegaHi] for
// every candidate; setting OmegaLo == OmegaHi gives the fixed-ω variants of
// §6, and a proper range gives the ω ∈R [lo, hi] variants.
type SeedSynthesizer struct {
	// Model supplies the conditional distributions records are re-sampled
	// from.
	Model *bayesnet.Model
	// OmegaLo, OmegaHi bound the per-candidate re-sampled attribute count ω.
	OmegaLo, OmegaHi int
}

// NewSeedSynthesizer validates the ω range against the model width.
func NewSeedSynthesizer(model *bayesnet.Model, omegaLo, omegaHi int) (*SeedSynthesizer, error) {
	m := len(model.Meta.Attrs)
	if omegaLo < 1 || omegaHi > m || omegaLo > omegaHi {
		return nil, fmt.Errorf("core: omega range [%d,%d] invalid for %d attributes", omegaLo, omegaHi, m)
	}
	return &SeedSynthesizer{Model: model, OmegaLo: omegaLo, OmegaHi: omegaHi}, nil
}

// Generate implements eq. (3): it copies the seed, then re-samples the last
// ω attributes in σ order, each conditioned on the current (partially
// updated) record.
func (s *SeedSynthesizer) Generate(seed dataset.Record, r *rng.RNG) dataset.Record {
	rec := make(dataset.Record, len(seed))
	s.generateInto(rec, seed, r)
	return rec
}

// generateInto is Generate without the output allocation: it overwrites dst
// (same length as seed) with the synthetic record. It draws through the
// model's frozen tables when published — same RNG consumption, same values,
// no locks (see bayesnet/freeze.go).
func (s *SeedSynthesizer) generateInto(dst, seed dataset.Record, r *rng.RNG) {
	m := len(seed)
	omega := s.OmegaLo + r.Intn(s.OmegaHi-s.OmegaLo+1)
	copy(dst, seed)
	order := s.Model.Struct.Order
	if f := s.Model.Frozen(); f != nil {
		f.SampleChain(dst, order, m-omega, r)
		return
	}
	for idx := m - omega; idx < m; idx++ {
		attr := order[idx]
		dst[attr] = s.Model.SampleAttr(attr, dst, r)
	}
}

// scanOrder exposes the attribute order the prober compares seeds along,
// enabling the struct-of-arrays privacy-test scan (see ScanTableFor).
func (s *SeedSynthesizer) scanOrder() []int { return s.Model.Struct.Order }

// GenProb returns Pr{y = M(d)} exactly.
//
// For a fixed ω the probability factorizes as
//
//	[d and y agree on σ(1..m−ω)] · Π_{i>m−ω} Pr{y_σ(i) | parents(y)}
//
// because the copied attributes equal the seed's values and every
// re-sampled conditional reads only attributes earlier in σ, whose values
// in the partially updated record coincide with y's. For a random ω the
// probability is the uniform mixture over the range, so different seeds —
// agreeing with y on different σ-prefixes — genuinely fall into different
// γ-partitions of the privacy test.
func (s *SeedSynthesizer) GenProb(y, d dataset.Record) float64 {
	return s.Prober(y)(d)
}

// proberState holds the per-candidate precomputation of a prober so the
// generation pipeline can reuse one allocation per worker instead of
// allocating tails, sums, and a closure for every candidate. A state is
// (re)filled by proberInit and read by proberEval; it is owned by a single
// goroutine.
type proberState struct {
	y     dataset.Record
	order []int
	// tail[idx] = Π_{u=idx..m-1} Pr{y_σ(u) | y}; tail[m] = 1.
	tail []float64
	// cum[j] = Σ_{idx=loIdx..j} tail[idx] for j in [loIdx, hiIdx].
	cum          []float64
	loIdx, hiIdx int
	weight       float64
	// constP, when ≥ 0, short-circuits evaluation to a seed-independent
	// probability (the marginal synthesizer's case).
	constP float64
	// match memoizes the privacy test's partition comparison per agreement
	// bucket (see initPartitions): match[j-loIdx] reports whether the
	// probability weight·cum[j] lies in the seed's partition. constMatch is
	// the constP analogue.
	match      []bool
	constMatch bool
	// ivOK reports that the matching buckets form one contiguous interval
	// [jLo, jHi] (bucket indices, not offsets), which lets the privacy-test
	// scan replace per-record partition checks with σ-prefix compares over
	// the flat scan table: a record is plausible iff its agreement bucket
	// lies in the interval (see scanFlat). yv caches y's values in σ order
	// up to jHi for those compares.
	ivOK     bool
	jLo, jHi int
	yv       []uint16
}

// grow returns buf resized to n, reusing its backing array when possible.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// proberInit precomputes, for the fixed candidate y, the conditional tail
// products and their partial mixture sums, so each seed evaluation costs
// one σ-prefix comparison plus a table lookup. Conditionals are read
// through the frozen tables when published — the identical float64 values
// the lazy path materializes.
func (s *SeedSynthesizer) proberInit(y dataset.Record, ps *proberState) {
	m := len(y)
	order := s.Model.Struct.Order
	ps.y, ps.order, ps.constP = y, order, -1
	ps.tail = grow(ps.tail, m+1)
	if f := s.Model.Frozen(); f != nil {
		f.TailProducts(y, order, ps.tail)
	} else {
		ps.tail[m] = 1
		for idx := m - 1; idx >= 0; idx-- {
			attr := order[idx]
			ps.tail[idx] = ps.tail[idx+1] * s.Model.CondProb(attr, y[attr], y)
		}
	}
	// Keep positions idx = m−ω for ω ∈ [lo, hi] run over [m−hi, m−lo].
	ps.loIdx, ps.hiIdx = m-s.OmegaHi, m-s.OmegaLo
	ps.cum = grow(ps.cum, ps.hiIdx+1)
	run := 0.0
	for j := ps.loIdx; j <= ps.hiIdx; j++ {
		run += ps.tail[j]
		ps.cum[j] = run
	}
	ps.weight = 1 / float64(s.OmegaHi-s.OmegaLo+1)
}

// agreeBucket maps a record to its mixture bucket: the σ-prefix agreement
// length with y, clamped to [loIdx, hiIdx], or -1 when the record agrees on
// too short a prefix to be a possible seed. Because the bucket clamps at
// hiIdx, agreement beyond σ-position hiIdx cannot change the result and the
// comparison stops there (hiIdx = m−OmegaLo < m, so the bound is in range).
func (ps *proberState) agreeBucket(d dataset.Record) int {
	// a = length of the σ-prefix on which d and y agree, capped at hiIdx+1.
	stop := ps.hiIdx + 1
	a := 0
	for ; a < stop; a++ {
		if d[ps.order[a]] != ps.y[ps.order[a]] {
			break
		}
	}
	// Seeds must agree on all kept attributes: m−ω ≤ a.
	j := a
	if j > ps.hiIdx {
		j = ps.hiIdx
	}
	if j < ps.loIdx {
		return -1
	}
	return j
}

// proberEval returns Pr{y = M(d)} for the y the state was initialized with.
func (ps *proberState) proberEval(d dataset.Record) float64 {
	if ps.constP >= 0 {
		return ps.constP
	}
	j := ps.agreeBucket(d)
	if j < 0 {
		return 0
	}
	return ps.weight * ps.cum[j]
}

// initPartitions memoizes, for every value the prober can return, whether
// it lies in partition `part` — the scan of the privacy test then needs no
// logarithms at all. The memo feeds the exact probability values proberEval
// would produce through the same PartitionIndex, so the decisions are
// bit-identical to testing each record individually.
func (ps *proberState) initPartitions(part int, logGamma float64) {
	if ps.constP >= 0 {
		i, ok := partitionIndexLog(ps.constP, logGamma)
		ps.constMatch = ps.constP > 0 && ok && i == part
		ps.ivOK = false
		return
	}
	n := ps.hiIdx - ps.loIdx + 1
	if cap(ps.match) < n {
		ps.match = make([]bool, n)
	} else {
		ps.match = ps.match[:n]
	}
	for j := 0; j < n; j++ {
		p := ps.weight * ps.cum[ps.loIdx+j]
		i, ok := partitionIndexLog(p, logGamma)
		ps.match[j] = p > 0 && ok && i == part
	}
	// Fold the memo into a bucket interval for the flat scan. The bucket
	// probabilities weight·cum[j] are nondecreasing in j, so the buckets
	// falling into one γ-partition are expected to be contiguous — but
	// contiguity is verified rather than assumed (the scan falls back to the
	// memo when it does not hold), keeping the exact per-bucket
	// PartitionIndex memo the single source of truth.
	first, last := -1, -1
	ps.ivOK = true
	for j := 0; j < n; j++ {
		if !ps.match[j] {
			continue
		}
		if first < 0 {
			first = j
		} else if !ps.match[j-1] {
			ps.ivOK = false
		}
		last = j
	}
	if first < 0 {
		ps.ivOK = false
	}
	if !ps.ivOK {
		return
	}
	ps.jLo, ps.jHi = ps.loIdx+first, ps.loIdx+last
	if cap(ps.yv) < ps.jHi+1 {
		ps.yv = make([]uint16, ps.hiIdx+1)
	}
	ps.yv = ps.yv[:ps.jHi+1]
	for k := 0; k <= ps.jHi; k++ {
		ps.yv[k] = ps.y[ps.order[k]]
	}
}

// plausibleEval reports whether the record is a plausible seed under the
// partition initPartitions was called with.
func (ps *proberState) plausibleEval(d dataset.Record) bool {
	if ps.constP >= 0 {
		return ps.constMatch
	}
	j := ps.agreeBucket(d)
	if j < 0 {
		return false
	}
	return ps.match[j-ps.loIdx]
}

// Prober precomputes for the fixed candidate y and returns a closure; the
// generation pipeline uses proberInit/proberEval directly to reuse state.
func (s *SeedSynthesizer) Prober(y dataset.Record) func(d dataset.Record) float64 {
	ps := new(proberState)
	s.proberInit(y, ps)
	return ps.proberEval
}

// MarginalSynthesizer is the baseline of §3.2: every attribute is sampled
// independently from its marginal distribution, ignoring the seed. Because
// generation is seed-independent, every record of the input dataset is an
// equally plausible seed and the privacy test always passes (§8).
type MarginalSynthesizer struct {
	// Model supplies the per-attribute marginal distributions.
	Model *bayesnet.Model
}

// NewMarginalSynthesizer wraps a model learned over MarginalStructure. It
// rejects models whose graph has edges, since then per-attribute sampling
// would not be marginal sampling.
func NewMarginalSynthesizer(model *bayesnet.Model) (*MarginalSynthesizer, error) {
	if model.Struct.Graph.NumEdges() != 0 {
		return nil, fmt.Errorf("core: marginal synthesizer requires an edgeless structure")
	}
	return &MarginalSynthesizer{Model: model}, nil
}

// Generate samples every attribute from its marginal; the seed is unused.
func (s *MarginalSynthesizer) Generate(_ dataset.Record, r *rng.RNG) dataset.Record {
	rec := make(dataset.Record, len(s.Model.Meta.Attrs))
	s.generateInto(rec, nil, r)
	return rec
}

// generateInto is Generate without the output allocation; the seed is
// unused. Like Model.SampleRecord it samples in σ order (which for an
// edgeless structure is just an attribute enumeration).
func (s *MarginalSynthesizer) generateInto(dst, _ dataset.Record, r *rng.RNG) {
	if f := s.Model.Frozen(); f != nil {
		for _, attr := range s.Model.Struct.Order {
			dst[attr] = f.SampleAttr(attr, dst, r)
		}
		return
	}
	for _, attr := range s.Model.Struct.Order {
		dst[attr] = s.Model.SampleAttr(attr, dst, r)
	}
}

// GenProb returns Π_i Pr{y_i}, independent of the seed.
func (s *MarginalSynthesizer) GenProb(y, _ dataset.Record) float64 {
	p := 1.0
	if f := s.Model.Frozen(); f != nil {
		for attr := range s.Model.Meta.Attrs {
			p *= f.CondProb(attr, y[attr], y)
		}
		return p
	}
	for attr := range s.Model.Meta.Attrs {
		p *= s.Model.CondProb(attr, y[attr], y)
	}
	return p
}

// proberInit fills the state with the constant seed-independent probability.
func (s *MarginalSynthesizer) proberInit(y dataset.Record, ps *proberState) {
	ps.constP = s.GenProb(y, nil)
}

// Prober returns a constant function: all seeds are equally plausible.
func (s *MarginalSynthesizer) Prober(y dataset.Record) func(d dataset.Record) float64 {
	p := s.GenProb(y, nil)
	return func(dataset.Record) float64 { return p }
}

// hotSynthesizer is the allocation-free fast path the generation pipeline
// takes when the synthesizer supports it: candidates are generated into a
// per-worker scratch record and probers reuse per-worker state, so steady
// state allocates only for records that actually pass the privacy test.
// Both methods must consume exactly the RNG state and produce exactly the
// values of their allocating counterparts — the determinism contract of
// GenerateCtx rides on it.
type hotSynthesizer interface {
	Synthesizer
	generateInto(dst, seed dataset.Record, r *rng.RNG)
	proberInit(y dataset.Record, ps *proberState)
}

var (
	_ Synthesizer    = (*SeedSynthesizer)(nil)
	_ Synthesizer    = (*MarginalSynthesizer)(nil)
	_ hotSynthesizer = (*SeedSynthesizer)(nil)
	_ hotSynthesizer = (*MarginalSynthesizer)(nil)
)
