package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/rng"
)

// PartitionIndex returns the geometric partition number of a generation
// probability p with respect to γ: the unique integer i ≥ 0 with
//
//	γ^(−i−1) < p ≤ γ^(−i)
//
// (Privacy Test 1, step 1). The boolean result is false when p ≤ 0, in
// which case the record cannot be a plausible seed. Probabilities slightly
// above 1 (floating-point dust) are clamped into partition 0.
func PartitionIndex(p, gamma float64) (int, bool) {
	return partitionIndexLog(p, math.Log(gamma))
}

// partitionIndexLog is PartitionIndex with log γ precomputed: the hot path
// evaluates it once per run instead of once per bucket. math.Log is a pure
// function, so the division sees the identical float64 and the result is
// bit-identical.
func partitionIndexLog(p, logGamma float64) (int, bool) {
	if p <= 0 || math.IsNaN(p) {
		return 0, false
	}
	if p >= 1 {
		return 0, true
	}
	i := int(math.Floor(-math.Log(p) / logGamma))
	if i < 0 {
		i = 0
	}
	return i, true
}

// TestConfig parameterizes the privacy test of Mechanism 1.
type TestConfig struct {
	// K is the plausible deniability parameter k ≥ 1: the minimum number of
	// records that must be plausible seeds of a released record.
	K int
	// Gamma is the indistinguishability parameter γ > 1 of Definition 1.
	Gamma float64
	// Randomized selects Privacy Test 2: the threshold k is perturbed with
	// Lap(1/ε0) noise, which makes the overall mechanism
	// (ε0 + ln(1+γ/t), e^(−ε0(k−t)))-differentially private (Theorem 1).
	// When false, the deterministic Privacy Test 1 runs.
	Randomized bool
	// Eps0 is the randomization parameter ε0 (required when Randomized).
	Eps0 float64
	// MaxPlausible, when positive, stops counting plausible seeds early
	// once this many are found (the tool's max_plausible knob, §5). It
	// trades utility for speed, never privacy. It must be ≥ K to avoid
	// rejecting every candidate; with the randomized test it should be
	// comfortably above K (the paper uses 2k) because the noisy threshold
	// k̃ can exceed K, and counts truncated at MaxPlausible < k̃ fail.
	MaxPlausible int
	// MaxCheckPlausible, when positive, bounds how many records of the
	// input dataset are examined (the tool's max_check_plausible knob, §5).
	MaxCheckPlausible int
}

// Validate checks the parameter constraints of §2.
func (c TestConfig) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("core: privacy test needs k >= 1, got %d", c.K)
	}
	if c.Gamma <= 1 {
		return fmt.Errorf("core: privacy test needs gamma > 1, got %g", c.Gamma)
	}
	if c.Randomized && c.Eps0 <= 0 {
		return fmt.Errorf("core: randomized privacy test needs eps0 > 0, got %g", c.Eps0)
	}
	if c.MaxPlausible > 0 && c.MaxPlausible < c.K {
		return fmt.Errorf("core: max_plausible %d < k %d would reject everything", c.MaxPlausible, c.K)
	}
	return nil
}

// TestResult reports the outcome of one privacy-test invocation.
type TestResult struct {
	// Pass is true when the candidate may be released.
	Pass bool
	// SeedProb is Pr{y = M(d)} for the actual seed.
	SeedProb float64
	// Partition is the geometric partition index i of the seed probability.
	Partition int
	// PlausibleCount is the number k' of plausible seeds found (records of
	// the input dataset whose generation probability falls in the seed's
	// partition). Early exits can leave this an undercount.
	PlausibleCount int
	// Checked is the number of input records examined.
	Checked int
	// Threshold is the value k' was compared against: k for the
	// deterministic test, or the randomized k̃ for Privacy Test 2.
	Threshold float64
}

// RunTest executes Privacy Test 1 (deterministic) or Privacy Test 2
// (randomized) on the tuple (M, D, d, y, k, γ[, ε0]).
//
// Records of D are scanned in a pseudo-random cyclic order (random start
// and coprime stride), matching the tool's randomized iteration (§5), and
// the scan stops early once the threshold is met, MaxPlausible plausible
// seeds are found, or MaxCheckPlausible records have been examined.
func RunTest(syn Synthesizer, data *dataset.Dataset, seed, y dataset.Record, cfg TestConfig, r *rng.RNG) (TestResult, error) {
	return runTestProbe(syn.Prober(y), data, seed, cfg, r)
}

// runTestProbe is RunTest over an already-initialized prober for the
// candidate, letting the generation pipeline reuse per-worker prober state
// instead of building a fresh closure per candidate.
func runTestProbe(prob func(d dataset.Record) float64, data *dataset.Dataset, seed dataset.Record, cfg TestConfig, r *rng.RNG) (TestResult, error) {
	if err := cfg.Validate(); err != nil {
		return TestResult{}, err
	}
	n := data.Len()
	if n == 0 {
		return TestResult{}, fmt.Errorf("core: privacy test on empty dataset")
	}

	res := TestResult{SeedProb: prob(seed)}

	// Step 1/2 of the tests: the partition of the actual seed.
	part, ok := PartitionIndex(res.SeedProb, cfg.Gamma)
	if !ok {
		// The seed could not have generated y at all; reject outright.
		res.Threshold = float64(cfg.K)
		return res, nil
	}
	res.Partition = part

	// Threshold: k, or k̃ = k + Lap(1/ε0) for the randomized test.
	res.Threshold = float64(cfg.K)
	if cfg.Randomized {
		res.Threshold += r.Laplace(1 / cfg.Eps0)
	}

	maxCheck := n
	if cfg.MaxCheckPlausible > 0 && cfg.MaxCheckPlausible < n {
		maxCheck = cfg.MaxCheckPlausible
	}
	maxPlausible := math.MaxInt
	if cfg.MaxPlausible > 0 {
		maxPlausible = cfg.MaxPlausible
	}

	// Pseudo-random cyclic scan: start anywhere, step by a stride coprime
	// with n so that every record is visited exactly once.
	start := r.Intn(n)
	stride := 1
	if n > 2 {
		stride = 1 + r.Intn(n-1)
		for gcd(stride, n) != 1 {
			stride++
			if stride >= n {
				stride = 1
			}
		}
	}

	idx := start
	for res.Checked < maxCheck {
		da := data.Row(idx)
		res.Checked++
		if p := prob(da); p > 0 {
			if i, ok := PartitionIndex(p, cfg.Gamma); ok && i == part {
				res.PlausibleCount++
				if float64(res.PlausibleCount) >= res.Threshold || res.PlausibleCount >= maxPlausible {
					break
				}
			}
		}
		idx += stride
		if idx >= n {
			idx -= n
		}
	}

	res.Pass = float64(res.PlausibleCount) >= res.Threshold
	return res, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// CountPlausibleSeeds exhaustively counts records of D in the same
// γ-partition as probability p for candidate y — the quantity k' of the
// privacy tests without any early exit. It is primarily a test and
// diagnostics helper.
func CountPlausibleSeeds(syn Synthesizer, data *dataset.Dataset, y dataset.Record, p, gamma float64) int {
	part, ok := PartitionIndex(p, gamma)
	if !ok {
		return 0
	}
	prob := syn.Prober(y)
	count := 0
	for _, da := range data.Rows() {
		if q := prob(da); q > 0 {
			if i, ok := PartitionIndex(q, gamma); ok && i == part {
				count++
			}
		}
	}
	return count
}

// IsPlausiblyDeniable verifies Definition 1 directly: it reports whether
// there exist at least k records of D (including one occurrence of the
// seed) whose generation probabilities for y lie pairwise within a factor
// γ. This is an independent check of the criterion the privacy tests
// enforce — the tests are sufficient for it, never necessary — and is used
// by the property-based test suite.
func IsPlausiblyDeniable(syn Synthesizer, data *dataset.Dataset, seed, y dataset.Record, k int, gamma float64) bool {
	if k < 1 || gamma < 1 {
		return false
	}
	prob := syn.Prober(y)
	p1 := prob(seed)
	if p1 <= 0 {
		return false
	}
	probs := make([]float64, 0, data.Len())
	for _, da := range data.Rows() {
		if p := prob(da); p > 0 {
			probs = append(probs, p)
		}
	}
	if len(probs) < k {
		return false
	}
	sort.Float64s(probs)
	// Two-pointer sweep: find a window [lo, hi] with probs[hi] ≤ γ·probs[lo],
	// size ≥ k, containing the value p1.
	lo := 0
	for hi := 0; hi < len(probs); hi++ {
		for probs[hi] > gamma*probs[lo] {
			lo++
		}
		if hi-lo+1 >= k && probs[lo] <= p1 && p1 <= probs[hi] {
			return true
		}
	}
	return false
}
