package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rng"
)

// referenceGenerate is the pre-batching pipeline spelled out: one explicit
// ReseedStream(seed, i) per candidate, the allocating Once path, releases
// in candidate index order. The batched kernel is pinned against this
// oracle, not against itself.
func referenceGenerate(t *testing.T, mech *Mechanism, candidates int, seed uint64) ([]dataset.Record, GenStats) {
	t.Helper()
	var stats GenStats
	var rows []dataset.Record
	r := rng.New(0)
	for i := 0; i < candidates; i++ {
		r.ReseedStream(seed, uint64(i))
		y, res, ok := mech.Once(r)
		stats.Candidates++
		stats.CheckedTotal += int64(res.Checked)
		if res.SeedProb <= 0 {
			stats.SeedRejected++
		}
		if ok {
			rows = append(rows, y)
			stats.Released++
		}
	}
	return rows, stats
}

// batchMechs builds the deterministic and randomized mechanisms the
// batch-identity matrix runs over, both on a frozen model so the batched
// hot path (scan table, fused sampling, arena) is what executes.
func batchMechs(t *testing.T) map[string]*Mechanism {
	t.Helper()
	model := benchModel(t, 21)
	if err := model.Freeze(0); err != nil {
		t.Fatal(err)
	}
	syn, err := NewSeedSynthesizer(model, 9, 11)
	if err != nil {
		t.Fatal(err)
	}
	seeds := tinySeeds(t, model, 300, 22)
	out := make(map[string]*Mechanism)
	for name, tc := range map[string]TestConfig{
		"deterministic": {K: 5, Gamma: 3, MaxPlausible: 10, MaxCheckPlausible: 64},
		"randomized":    {K: 5, Gamma: 3, Randomized: true, Eps0: 0.8, MaxPlausible: 12},
	} {
		mech, err := NewMechanism(syn, seeds, tc)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = mech
	}
	return out
}

// TestBatchedGenerateByteIdentical is the batching half of the determinism
// suite: for every worker count × batch size combination, the batched
// kernel must release the byte-identical record sequence and the identical
// statistics of the explicit per-candidate reference loop.
func TestBatchedGenerateByteIdentical(t *testing.T) {
	const candidates = 800
	const seed = 99
	for name, mech := range batchMechs(t) {
		t.Run(name, func(t *testing.T) {
			wantRows, wantStats := referenceGenerate(t, mech, candidates, seed)
			if wantStats.Released == 0 {
				t.Fatal("reference released nothing; test would be vacuous")
			}
			for _, workers := range []int{1, 3, 8} {
				for _, batch := range []int{1, 7, 256, candidates} {
					out, stats, err := GenerateCtx(context.Background(), mech, GenConfig{
						Candidates: candidates, Workers: workers, Seed: seed, BatchSize: batch,
					})
					if err != nil {
						t.Fatal(err)
					}
					tag := fmt.Sprintf("workers=%d batch=%d", workers, batch)
					rows := out.Rows()
					if len(rows) != len(wantRows) {
						t.Fatalf("%s: released %d records, want %d", tag, len(rows), len(wantRows))
					}
					for i := range rows {
						for j := range rows[i] {
							if rows[i][j] != wantRows[i][j] {
								t.Fatalf("%s: record %d attr %d = %d, want %d",
									tag, i, j, rows[i][j], wantRows[i][j])
							}
						}
					}
					if stats.Released != wantStats.Released || stats.Candidates != wantStats.Candidates ||
						stats.SeedRejected != wantStats.SeedRejected || stats.CheckedTotal != wantStats.CheckedTotal {
						t.Fatalf("%s: stats %+v, want %+v", tag, stats, wantStats)
					}
				}
			}
		})
	}
}

// TestFastTestMatchesRunTest pins the fast privacy-test kernel, shape by
// shape, against the reference RunTest path on identical RNG streams: the
// flat interval scan, the mask-walk fallback (flat table removed), and the
// gcd-walk fallback (no scan table at all) must produce identical results
// and identical RNG consumption for every candidate.
func TestFastTestMatchesRunTest(t *testing.T) {
	for name, mech := range batchMechs(t) {
		t.Run(name, func(t *testing.T) {
			hs := mech.Synth.(hotSynthesizer)
			full := mech.ensureScan()
			if full == nil || full.flat == nil {
				t.Fatal("expected a flat scan table for the seed synthesizer")
			}
			noFlat := *full
			noFlat.flat = nil
			pre, err := newTestPre(mech)
			if err != nil {
				t.Fatal(err)
			}
			tables := map[string]*ScanTable{"flat": full, "mask": &noFlat, "none": nil}
			for tname, st := range tables {
				sc := newGenScratch(len(mech.Seeds.Meta.Attrs))
				rFast, rRef := rng.New(0), rng.New(0)
				for i := uint64(0); i < 500; i++ {
					rFast.ReseedStream(7, i)
					rRef.ReseedStream(7, i)
					y, res, ok := mech.onceFast(hs, sc, st, &pre, rFast)
					wantY, wantRes, wantOK := mech.Once(rRef)
					if ok != wantOK || res != wantRes {
						t.Fatalf("%s candidate %d: result %+v (ok=%v), want %+v (ok=%v)",
							tname, i, res, ok, wantRes, wantOK)
					}
					for j := range wantY {
						if y[j] != wantY[j] {
							t.Fatalf("%s candidate %d: attr %d = %d, want %d", tname, i, j, y[j], wantY[j])
						}
					}
					// Both paths must have consumed the same stream.
					if g, w := rFast.Uint64(), rRef.Uint64(); g != w {
						t.Fatalf("%s candidate %d: RNG streams diverged after the test", tname, i)
					}
				}
			}
		})
	}
}

// TestBatchedGenerateCancelled pins the per-batch cancellation poll: a
// pre-cancelled context must yield zero candidates — workers check before
// claiming their first batch.
func TestBatchedGenerateCancelled(t *testing.T) {
	mech := batchMechs(t)["deterministic"]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, stats, err := GenerateCtx(ctx, mech, GenConfig{Candidates: 10000, Workers: 4, Seed: 3})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Candidates != 0 || out.Len() != 0 {
		t.Fatalf("pre-cancelled run drew %d candidates, released %d; want 0, 0", stats.Candidates, out.Len())
	}
}

// BenchmarkGenerateBatched measures the batched kernel at the default batch
// size across multiple workers — the claim-cursor + per-worker-counter
// configuration a serving layer runs — complementing the single-core
// BenchmarkGenerateFrozen number.
func BenchmarkGenerateBatched(b *testing.B) {
	mech := benchMech(b, true, false)
	const candidates = 10000
	b.ReportAllocs()
	b.ResetTimer()
	released := 0
	for i := 0; i < b.N; i++ {
		_, stats, err := GenerateCtx(context.Background(), mech, GenConfig{
			Candidates: candidates, Workers: 4, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		released = stats.Released
	}
	b.ReportMetric(float64(candidates)*float64(b.N)/b.Elapsed().Seconds(), "cands/s")
	if released == 0 {
		b.Fatal("benchmark mechanism released nothing")
	}
}
