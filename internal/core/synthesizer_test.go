package core

import (
	"math"
	"testing"

	"repro/internal/bayesnet"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// tinyModel builds a 3-attribute model (A → B → C chain) learned from
// correlated data; small enough for exhaustive and Monte-Carlo checks.
func tinyModel(t testing.TB, seed uint64) *bayesnet.Model {
	t.Helper()
	meta := dataset.MustMetadata(
		dataset.NewCategorical("A", "0", "1"),
		dataset.NewCategorical("B", "0", "1", "2"),
		dataset.NewCategorical("C", "0", "1"),
	)
	g := bayesnet.NewGraph(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	st := &bayesnet.Structure{Graph: g, Order: order, Scores: make([]float64, 3)}
	r := rng.New(seed)
	ds := dataset.New(meta)
	for i := 0; i < 3000; i++ {
		a := uint16(r.Intn(2))
		b := uint16((int(a) + r.Intn(2)) % 3)
		c := uint16(0)
		if b > 0 && r.Bool(0.8) {
			c = 1
		}
		ds.Append(dataset.Record{a, b, c})
	}
	bkt := dataset.NewBucketizer(meta)
	model, err := bayesnet.LearnModel(ds, bkt, st, bayesnet.ModelConfig{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func tinySeeds(t testing.TB, model *bayesnet.Model, n int, seed uint64) *dataset.Dataset {
	t.Helper()
	r := rng.New(seed)
	ds := dataset.New(model.Meta)
	for i := 0; i < n; i++ {
		ds.Append(model.SampleRecord(r))
	}
	return ds
}

func TestNewSeedSynthesizerValidation(t *testing.T) {
	model := tinyModel(t, 1)
	cases := []struct{ lo, hi int }{{0, 1}, {1, 4}, {2, 1}, {-1, 2}}
	for _, c := range cases {
		if _, err := NewSeedSynthesizer(model, c.lo, c.hi); err == nil {
			t.Errorf("omega range [%d,%d] accepted", c.lo, c.hi)
		}
	}
	if _, err := NewSeedSynthesizer(model, 1, 3); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateKeepsSeedPrefix(t *testing.T) {
	model := tinyModel(t, 2)
	r := rng.New(3)
	for omega := 1; omega <= 3; omega++ {
		syn, err := NewSeedSynthesizer(model, omega, omega)
		if err != nil {
			t.Fatal(err)
		}
		seed := dataset.Record{1, 2, 0}
		for trial := 0; trial < 200; trial++ {
			y := syn.Generate(seed, r)
			kept := len(seed) - omega
			for j := 0; j < kept; j++ {
				attr := model.Struct.Order[j]
				if y[attr] != seed[attr] {
					t.Fatalf("omega=%d: kept attribute σ(%d)=%d changed: %v vs seed %v",
						omega, j, attr, y, seed)
				}
			}
		}
	}
}

func TestGenProbZeroWhenPrefixDisagrees(t *testing.T) {
	model := tinyModel(t, 4)
	syn, err := NewSeedSynthesizer(model, 1, 1) // keep first 2 of 3 attributes
	if err != nil {
		t.Fatal(err)
	}
	y := dataset.Record{0, 1, 0}
	agree := dataset.Record{0, 1, 1}    // agrees on σ-prefix (A, B)
	disagree := dataset.Record{1, 1, 0} // differs on A
	if p := syn.GenProb(y, agree); p <= 0 {
		t.Fatalf("agreeing seed got probability %g", p)
	}
	if p := syn.GenProb(y, disagree); p != 0 {
		t.Fatalf("disagreeing seed got probability %g", p)
	}
}

func TestGenProbMonotoneInAgreement(t *testing.T) {
	// With ω ∈ [1, 3], a seed agreeing on a longer σ-prefix can only have
	// a larger generation probability (more mixture terms are live).
	model := tinyModel(t, 5)
	syn, err := NewSeedSynthesizer(model, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	y := dataset.Record{0, 1, 1}
	full := syn.GenProb(y, dataset.Record{0, 1, 1})
	two := syn.GenProb(y, dataset.Record{0, 1, 0})
	one := syn.GenProb(y, dataset.Record{0, 2, 0})
	zero := syn.GenProb(y, dataset.Record{1, 2, 0})
	if !(full >= two && two >= one && one >= zero) {
		t.Fatalf("probabilities not monotone in agreement: %g %g %g %g", full, two, one, zero)
	}
	if zero <= 0 {
		t.Fatalf("with omega up to m, every seed should be plausible; got %g", zero)
	}
}

func TestProberMatchesGenProb(t *testing.T) {
	model := tinyModel(t, 6)
	syn, err := NewSeedSynthesizer(model, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	for trial := 0; trial < 200; trial++ {
		y := model.SampleRecord(r)
		d := model.SampleRecord(r)
		prober := syn.Prober(y)
		if a, b := prober(d), syn.GenProb(y, d); a != b {
			t.Fatalf("Prober %g != GenProb %g", a, b)
		}
	}
}

// TestGenProbMatchesMonteCarlo is the key correctness test of the exact
// probability computation: the analytic Pr{y = M(d)} must match the
// empirical frequency of y among many generations from d.
func TestGenProbMatchesMonteCarlo(t *testing.T) {
	model := tinyModel(t, 8)
	for _, omegaRange := range [][2]int{{1, 1}, {2, 2}, {1, 3}} {
		syn, err := NewSeedSynthesizer(model, omegaRange[0], omegaRange[1])
		if err != nil {
			t.Fatal(err)
		}
		seed := dataset.Record{1, 0, 1}
		r := rng.New(9)
		const draws = 400000
		freq := map[string]int{}
		for i := 0; i < draws; i++ {
			y := syn.Generate(seed, r)
			freq[y.Key()]++
		}
		// Check every generated outcome's frequency against GenProb.
		checked := 0
		for key, count := range freq {
			if count < 1000 {
				continue // too noisy to compare
			}
			y := dataset.Record{uint16(key[0]) | uint16(key[1])<<8,
				uint16(key[2]) | uint16(key[3])<<8,
				uint16(key[4]) | uint16(key[5])<<8}
			want := syn.GenProb(y, seed)
			got := float64(count) / draws
			if math.Abs(got-want)/want > 0.05 {
				t.Errorf("omega %v: freq(%v) = %.5f, GenProb = %.5f", omegaRange, y, got, want)
			}
			checked++
		}
		if checked == 0 {
			t.Fatalf("omega %v: no outcome frequent enough to check", omegaRange)
		}
	}
}

func TestGenProbSumsToOneOverUniverse(t *testing.T) {
	// Σ_y Pr{y = M(d)} over the full record universe must be 1.
	model := tinyModel(t, 10)
	for _, omegaRange := range [][2]int{{1, 1}, {3, 3}, {1, 3}} {
		syn, err := NewSeedSynthesizer(model, omegaRange[0], omegaRange[1])
		if err != nil {
			t.Fatal(err)
		}
		seed := dataset.Record{0, 2, 1}
		sum := 0.0
		for a := uint16(0); a < 2; a++ {
			for b := uint16(0); b < 3; b++ {
				for c := uint16(0); c < 2; c++ {
					sum += syn.GenProb(dataset.Record{a, b, c}, seed)
				}
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("omega %v: probabilities sum to %.12f", omegaRange, sum)
		}
	}
}

func TestMarginalSynthesizerSeedIndependent(t *testing.T) {
	model := tinyModel(t, 11)
	marg, err := bayesnet.LearnModel(
		tinySeeds(t, model, 2000, 12), model.Bkt,
		bayesnet.MarginalStructure(model.Meta), bayesnet.ModelConfig{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	syn, err := NewMarginalSynthesizer(marg)
	if err != nil {
		t.Fatal(err)
	}
	y := dataset.Record{1, 1, 0}
	p1 := syn.GenProb(y, dataset.Record{0, 0, 0})
	p2 := syn.GenProb(y, dataset.Record{1, 2, 1})
	if p1 != p2 {
		t.Fatalf("marginal synthesizer depends on seed: %g vs %g", p1, p2)
	}
	if p1 <= 0 || p1 >= 1 {
		t.Fatalf("implausible marginal probability %g", p1)
	}
}

func TestNewMarginalSynthesizerRejectsStructuredModel(t *testing.T) {
	model := tinyModel(t, 13)
	if _, err := NewMarginalSynthesizer(model); err == nil {
		t.Fatal("structured model accepted as marginal synthesizer")
	}
}
