package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/bayesnet"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// benchModel builds a wider model than tinyModel — twelve attributes in a
// chain, the first three low-cardinality (so kept σ-prefixes actually
// recur among seeds) and the rest wide (32–64 values, past the guide
// crossover) — so hot-path measurements see realistic conditional-table
// sizes and sampling costs.
func benchModel(t testing.TB, seed uint64) *bayesnet.Model {
	t.Helper()
	cards := []int{2, 3, 2, 40, 64, 32, 50, 64, 40, 57, 48, 36}
	attrs := make([]dataset.Attribute, len(cards))
	for i, card := range cards {
		attrs[i] = dataset.NewNumerical(string(rune('A'+i)), 0, card-1)
	}
	meta := dataset.MustMetadata(attrs...)
	g := bayesnet.NewGraph(len(cards))
	for i := 0; i+1 < len(cards); i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	st := &bayesnet.Structure{Graph: g, Order: order, Scores: make([]float64, len(cards))}
	r := rng.New(seed)
	ds := dataset.New(meta)
	rec := make(dataset.Record, len(cards))
	for i := 0; i < 4000; i++ {
		prev := r.Intn(2)
		for j, card := range cards {
			v := (prev*7 + r.Intn(1+card/2)) % card
			rec[j] = uint16(v)
			prev = v
		}
		ds.Append(rec.Clone())
	}
	bkt := dataset.NewBucketizer(meta)
	model, err := bayesnet.LearnModel(ds, bkt, st, bayesnet.ModelConfig{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	return model
}

// genericSyn hides the hot-path interface, forcing the generation pipeline
// down the allocating Once path — the seed implementation's behavior.
type genericSyn struct{ Synthesizer }

// TestFrozenGenerateByteIdentical is the pipeline half of the determinism
// suite: a frozen model, an unfrozen model, and the generic (pre-hot-path)
// pipeline must release byte-identical sequences with identical stats, for
// every worker count, for both synthesizer kinds.
func TestFrozenGenerateByteIdentical(t *testing.T) {
	type variant struct {
		name string
		mech *Mechanism
	}
	build := func(t *testing.T, marginal bool) []variant {
		vs := make([]variant, 0, 3)
		for _, v := range []string{"lazy", "frozen", "generic"} {
			var model *bayesnet.Model
			var syn Synthesizer
			var err error
			if marginal {
				model = marginalModel(t, benchModel(t, 21))
				syn, err = NewMarginalSynthesizer(model)
			} else {
				model = benchModel(t, 21)
				syn, err = NewSeedSynthesizer(model, 9, 11)
			}
			if err != nil {
				t.Fatal(err)
			}
			if v == "frozen" {
				if err := model.Freeze(0); err != nil {
					t.Fatal(err)
				}
			}
			if v == "generic" {
				syn = genericSyn{syn}
			}
			seeds := tinySeeds(t, model, 300, 22)
			mech, err := NewMechanism(syn, seeds, TestConfig{K: 5, Gamma: 3, MaxPlausible: 10, MaxCheckPlausible: 64})
			if err != nil {
				t.Fatal(err)
			}
			vs = append(vs, variant{v, mech})
		}
		return vs
	}
	for _, marginal := range []bool{false, true} {
		name := "seedbased"
		if marginal {
			name = "marginal"
		}
		t.Run(name, func(t *testing.T) {
			vs := build(t, marginal)
			var wantRows []dataset.Record
			var wantStats GenStats
			for _, v := range vs {
				for _, workers := range []int{1, 3, 8} {
					out, stats, err := GenerateCtx(context.Background(), v.mech, GenConfig{
						Candidates: 800, Workers: workers, Seed: 99,
					})
					if err != nil {
						t.Fatal(err)
					}
					if wantRows == nil {
						wantRows, wantStats = out.Rows(), stats
						continue
					}
					rows := out.Rows()
					if len(rows) != len(wantRows) {
						t.Fatalf("%s workers=%d: released %d records, want %d", v.name, workers, len(rows), len(wantRows))
					}
					for i := range rows {
						for j := range rows[i] {
							if rows[i][j] != wantRows[i][j] {
								t.Fatalf("%s workers=%d: record %d attr %d = %d, want %d",
									v.name, workers, i, j, rows[i][j], wantRows[i][j])
							}
						}
					}
					if stats.Released != wantStats.Released || stats.Candidates != wantStats.Candidates ||
						stats.SeedRejected != wantStats.SeedRejected || stats.CheckedTotal != wantStats.CheckedTotal {
						t.Fatalf("%s workers=%d: stats %+v, want %+v", v.name, workers, stats, wantStats)
					}
				}
			}
		})
	}
}

// marginalModel relearns the model's data-free marginal counterpart over an
// edgeless structure (MarginalSynthesizer requires one).
func marginalModel(t testing.TB, src *bayesnet.Model) *bayesnet.Model {
	t.Helper()
	st := bayesnet.MarginalStructure(src.Meta)
	r := rng.New(77)
	ds := dataset.New(src.Meta)
	for i := 0; i < 2000; i++ {
		ds.Append(src.SampleRecord(r))
	}
	model, err := bayesnet.LearnModel(ds, dataset.NewBucketizer(src.Meta), st, bayesnet.ModelConfig{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	return model
}

// streamMech builds a mechanism with a mid-range pass rate (~0.65: few
// seeds, randomized threshold) so target runs genuinely under-deliver their
// first chunk and overshoot their final one.
func streamMech(t testing.TB) *Mechanism {
	t.Helper()
	model := tinyModel(t, 56)
	syn, err := NewSeedSynthesizer(model, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	seeds := tinySeeds(t, model, 60, 57)
	mech, err := NewMechanism(syn, seeds, TestConfig{
		K: 14, Gamma: 1.2, Randomized: true, Eps0: 0.4, MaxPlausible: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mech
}

// TestStreamReleasedMatchesDelivered pins the over-reporting fix: when the
// final chunk overshoots the target, GenStats.Released must equal what the
// sink received, not the chunk pass counts.
func TestStreamReleasedMatchesDelivered(t *testing.T) {
	mech := streamMech(t)
	for seed := uint64(1); seed <= 5; seed++ {
		delivered := 0
		stats, err := GenerateTargetStream(context.Background(), mech, 37, 0, 3, seed, func(batch []dataset.Record) error {
			delivered += len(batch)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if delivered != 37 {
			t.Fatalf("seed %d: sink received %d records, want 37", seed, delivered)
		}
		if stats.Released != delivered {
			t.Fatalf("seed %d: stats.Released = %d, sink received %d", seed, stats.Released, delivered)
		}
	}
}

// TestStreamSinkErrorNotCounted pins the swallowed-error fix: a batch the
// sink rejects is not counted as released, and the error surfaces.
func TestStreamSinkErrorNotCounted(t *testing.T) {
	mech := streamMech(t)
	boom := errors.New("client gone")
	calls := 0
	stats, err := GenerateTargetStream(context.Background(), mech, 30, 0, 2, 3, func(batch []dataset.Record) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("stream error = %v, want the sink's error", err)
	}
	if calls != 1 {
		t.Fatalf("sink called %d times after failing, want 1", calls)
	}
	if stats.Released != 0 {
		t.Fatalf("stats.Released = %d after a failed delivery, want 0", stats.Released)
	}
}

// TestStreamCancelKeepsDeliveredCount cancels between chunks and checks the
// stats still reflect exactly the delivered records.
func TestStreamCancelKeepsDeliveredCount(t *testing.T) {
	mech := streamMech(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered := 0
	stats, err := GenerateTargetStream(ctx, mech, 1000, 0, 2, 3, func(batch []dataset.Record) error {
		delivered += len(batch)
		cancel() // client walks away after the first batch
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("stream error = %v, want context.Canceled", err)
	}
	if delivered == 0 {
		t.Fatal("sink never ran")
	}
	if stats.Released != delivered {
		t.Fatalf("stats.Released = %d, sink received %d", stats.Released, delivered)
	}
}

// TestStreamBatchSliceReuse documents the new sink contract: the batch
// slice is invalidated by the next batch, but the records are the sink's to
// keep — collected output must match a non-streaming run.
func TestStreamBatchSliceReuse(t *testing.T) {
	mech := streamMech(t)
	var kept []dataset.Record
	_, err := GenerateTargetStream(context.Background(), mech, 40, 0, 2, 9, func(batch []dataset.Record) error {
		kept = append(kept, batch...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := GenerateTargetCtx(context.Background(), mech, 40, 0, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.Rows()
	if len(kept) != len(rows) {
		t.Fatalf("streamed %d records, collected %d", len(kept), len(rows))
	}
	for i := range kept {
		for j := range kept[i] {
			if kept[i][j] != rows[i][j] {
				t.Fatalf("record %d attr %d: streamed %d, collected %d", i, j, kept[i][j], rows[i][j])
			}
		}
	}
}

// benchmarkGenerate measures single-worker candidate throughput; with
// Workers=1 the reported cands/s is per-core by construction (the
// records/sec-per-core number in cmd/sgfd's README divides by PassRate).
func benchmarkGenerate(b *testing.B, mech *Mechanism) {
	// Sized so one op sits well above the CI gate's noise floor (~15ms even
	// on the frozen path).
	const candidates = 10000
	b.ReportAllocs()
	b.ResetTimer()
	released := 0
	for i := 0; i < b.N; i++ {
		_, stats, err := GenerateCtx(context.Background(), mech, GenConfig{
			Candidates: candidates, Workers: 1, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		released = stats.Released
	}
	b.ReportMetric(float64(candidates)*float64(b.N)/b.Elapsed().Seconds(), "cands/s")
	if released == 0 {
		b.Fatal("benchmark mechanism released nothing")
	}
}

func benchMech(b *testing.B, frozen, generic bool) *Mechanism {
	model := benchModel(b, 21)
	if frozen {
		if err := model.Freeze(0); err != nil {
			b.Fatal(err)
		}
	}
	syn, err := NewSeedSynthesizer(model, 9, 11)
	if err != nil {
		b.Fatal(err)
	}
	var s Synthesizer = syn
	if generic {
		s = genericSyn{syn}
	}
	seeds := tinySeeds(b, model, 300, 22)
	// The scan caps are the tool's max_plausible / max_check_plausible
	// knobs (§5); without them the plausible-seed scan dominates and the
	// sampling path under test is noise.
	mech, err := NewMechanism(s, seeds, TestConfig{K: 5, Gamma: 3, MaxPlausible: 10, MaxCheckPlausible: 64})
	if err != nil {
		b.Fatal(err)
	}
	return mech
}

// BenchmarkGenerateBaseline is the seed implementation's hot path: lazy
// locked parameter lookup, per-candidate allocations.
func BenchmarkGenerateBaseline(b *testing.B) {
	benchmarkGenerate(b, benchMech(b, false, true))
}

// BenchmarkGenerateFrozen is the full fast path: frozen tables + per-worker
// scratch reuse.
func BenchmarkGenerateFrozen(b *testing.B) {
	benchmarkGenerate(b, benchMech(b, true, false))
}
