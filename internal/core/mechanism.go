package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// Mechanism is Mechanism 1 of §2: sample a seed from the seed dataset,
// generate a candidate synthetic with the generative model, and release it
// only if the privacy test passes.
type Mechanism struct {
	// Synth draws candidates from the generative model and prices their
	// generation probabilities for the privacy test.
	Synth Synthesizer
	// Seeds is the synthesis split DS of the input dataset.
	Seeds *dataset.Dataset
	// Test configures the plausible-deniability test applied to every
	// candidate before release.
	Test TestConfig
	// Scan optionally holds the precomputed privacy-test scan layout for
	// (Synth, Seeds). Serving layers that run many mechanisms over one
	// fitted model set it to a shared ScanTable (see sgf.FittedModel); when
	// nil, generation builds it lazily on the first run.
	Scan *ScanTable

	scanOnce sync.Once
}

// ensureScan resolves the scan table once per mechanism, honoring a
// caller-provided Scan.
func (m *Mechanism) ensureScan() *ScanTable {
	m.scanOnce.Do(func() {
		if m.Scan == nil {
			m.Scan = ScanTableFor(m.Synth, m.Seeds)
		}
	})
	return m.Scan
}

// NewMechanism validates the configuration (|D| ≥ k is required by
// Definition 1 and Theorem 1).
func NewMechanism(syn Synthesizer, seeds *dataset.Dataset, test TestConfig) (*Mechanism, error) {
	if err := test.Validate(); err != nil {
		return nil, err
	}
	if seeds.Len() < test.K {
		return nil, fmt.Errorf("core: seed dataset has %d records, need at least k=%d", seeds.Len(), test.K)
	}
	return &Mechanism{Synth: syn, Seeds: seeds, Test: test}, nil
}

// Once runs one iteration of Mechanism 1: it returns the candidate, the
// test outcome, and whether the candidate may be released. The candidate is
// returned even when the test fails so that callers can account for it
// (the tool emits all candidates and marks which passed, §6.5); callers
// must release only records with ok == true.
func (m *Mechanism) Once(r *rng.RNG) (dataset.Record, TestResult, bool) {
	seed := m.Seeds.Row(r.Intn(m.Seeds.Len()))
	y := m.Synth.Generate(seed, r)
	res, err := RunTest(m.Synth, m.Seeds, seed, y, m.Test, r)
	if err != nil {
		// Config was validated at construction; an error here means the
		// dataset emptied underneath us, which is a programming error.
		panic(err)
	}
	return y, res, res.Pass
}

// genScratch is a generation worker's reusable state: the candidate record
// buffer and the prober precomputation, allocated once per worker instead
// of once per candidate.
type genScratch struct {
	rec dataset.Record
	ps  proberState
}

func newGenScratch(numAttrs int) *genScratch {
	return &genScratch{rec: make(dataset.Record, numAttrs)}
}

// onceFast is Once through the allocation-free hot path: the candidate is
// generated into sc.rec (the returned record ALIASES sc.rec — copy it to
// keep it past the next iteration) and the privacy test runs on reused
// prober state against the precomputed scan layout. It consumes exactly
// the RNG state Once would, and returns exactly the same values.
func (m *Mechanism) onceFast(hs hotSynthesizer, sc *genScratch, st *ScanTable, pre *testPre, r *rng.RNG) (dataset.Record, TestResult, bool) {
	seed := m.Seeds.Row(r.Intn(pre.n))
	hs.generateInto(sc.rec, seed, r)
	hs.proberInit(sc.rec, &sc.ps)
	res := runTestFast(&sc.ps, st, pre, m.Seeds, seed, r)
	return sc.rec, res, res.Pass
}

// recordArena hands out record copies from growing block allocations, so
// cloning a passing candidate out of the scratch buffer costs amortized
// ~one allocation per hundreds of records instead of one per record. Blocks
// are never reused: handed-out records stay valid for as long as the caller
// keeps them (the GenerateTargetStream contract).
type recordArena struct {
	free []uint16
	next int
}

func (a *recordArena) clone(src dataset.Record) dataset.Record {
	m := len(src)
	if len(a.free) < m {
		if a.next < 1024 {
			a.next = a.next*4 + 16
		}
		a.free = make([]uint16, a.next*m)
	}
	out := dataset.Record(a.free[:m:m])
	a.free = a.free[m:]
	copy(out, src)
	return out
}

// ReleaseBudget returns the per-released-record (ε, δ) differential privacy
// guarantee of Theorem 1 for this mechanism's parameters, optimized over
// the trade-off parameter t. The boolean is false for the deterministic
// test (no DP guarantee) or when no t meets the δ target.
func (m *Mechanism) ReleaseBudget(maxDelta float64) (privacy.Budget, bool) {
	if !m.Test.Randomized {
		return privacy.Budget{}, false
	}
	b, _, ok := privacy.BestReleaseBudget(m.Test.K, m.Test.Gamma, m.Test.Eps0, maxDelta)
	return b, ok
}

// GenStats aggregates the outcome of a generation run.
type GenStats struct {
	// Candidates is the number of candidate synthetics generated.
	Candidates int
	// Released is the number of records released to the caller. For
	// GenerateCtx this is exactly the privacy-test pass count; for
	// GenerateTargetStream it is capped at what the sink actually accepted
	// (trimmed overshoot and failed deliveries are excluded).
	Released int
	// SeedRejected counts candidates whose own seed had zero generation
	// probability (cannot happen with seed-based synthesis; tracked for
	// generality).
	SeedRejected int
	// CheckedTotal is the total number of plausible-seed examinations.
	CheckedTotal int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// SinkElapsed is the portion of Elapsed spent inside the caller's sink
	// (GenerateTargetStream only): delivery/flush time as opposed to
	// generation time, so a serving layer can report the two stages apart.
	SinkElapsed time.Duration
}

// PassRate returns Released/Candidates (0 when no candidates were drawn).
func (s GenStats) PassRate() float64 {
	if s.Candidates == 0 {
		return 0
	}
	return float64(s.Released) / float64(s.Candidates)
}

// GenConfig controls a generation run.
type GenConfig struct {
	// Candidates is the number of candidate synthetics to draw.
	Candidates int
	// Workers is the parallelism degree; 0 means GOMAXPROCS. Synthesis of
	// one record is independent of all others (§5), so the run scales
	// embarrassingly.
	Workers int
	// Seed seeds the run's deterministic RNG tree.
	Seed uint64
	// IndexOffset shifts the candidate indices used for RNG stream
	// derivation: candidate i draws from rng.NewStream(Seed, IndexOffset+i).
	// A multi-batch driver sets it to the number of candidates already
	// drawn, so every candidate of the whole run gets a distinct stream
	// without perturbing the seed (two runs whose seeds differ must never
	// share streams, which perturbed seeds — e.g. seed+batch — would cause).
	IndexOffset uint64
	// BatchSize is the number of contiguous candidate indices a worker
	// claims at a time; 0 means a sensible default. It tunes scheduling
	// granularity only — candidate i's randomness is a pure function of
	// (Seed, IndexOffset+i), so the output is byte-identical for any batch
	// size (pinned by the batch-identity tests).
	BatchSize int
}

// defaultGenBatch is the candidate-range claim size when GenConfig.BatchSize
// is zero: large enough that the claim cursor and the per-batch ctx poll
// vanish from profiles, small enough to balance workers on short runs.
const defaultGenBatch = 256

// Generate runs Mechanism 1 cfg.Candidates times and returns the released
// synthetic records. See GenerateCtx for the determinism contract.
func Generate(mech *Mechanism, cfg GenConfig) (*dataset.Dataset, GenStats, error) {
	return GenerateCtx(context.Background(), mech, cfg)
}

// GenerateCtx runs Mechanism 1 cfg.Candidates times and returns the released
// synthetic records, stopping early when ctx is cancelled (the partial
// output, the stats so far, and ctx's error are returned in that case).
//
// Determinism contract: candidate i draws all of its randomness from
// rng.NewStream(cfg.Seed, i), and releases are concatenated in candidate
// index order. Workers shard the index space, so the released sequence is
// byte-identical for a fixed seed REGARDLESS of cfg.Workers — a serving
// layer may size parallelism to the current load without perturbing
// results.
func GenerateCtx(ctx context.Context, mech *Mechanism, cfg GenConfig) (*dataset.Dataset, GenStats, error) {
	if cfg.Candidates < 0 {
		return nil, GenStats{}, fmt.Errorf("core: negative candidate count %d", cfg.Candidates)
	}
	slots := make([]dataset.Record, cfg.Candidates)
	stats, err := generateSlots(ctx, mech, cfg, slots)
	released := make([]dataset.Record, 0, stats.Released)
	for _, y := range slots {
		if y != nil {
			released = append(released, y)
		}
	}
	return dataset.FromRecords(mech.Seeds.Meta, released), stats, err
}

// genCounters is one worker's private statistics, merged under a mutex
// after the worker drains — the per-candidate hot loop touches no shared
// cache line.
type genCounters struct {
	cands, pass, checked, rejected int64
}

// generateSlots runs the candidate loop of GenerateCtx into caller-owned
// per-candidate slots (len(slots) == cfg.Candidates, all entries nil on
// entry): slot i receives candidate i's record iff it passed the privacy
// test. Letting the caller own the slots is what allows
// GenerateTargetStream to reuse one allocation across its chunks.
//
// Workers claim contiguous candidate ranges off a shared cursor (batched
// work stealing): a claimed batch seeks the worker's stream seeder to its
// start once and reseeds per candidate with one add, cancellation is
// polled per batch, and statistics accumulate in per-worker counters.
// Candidate i's randomness stays a pure function of (Seed, IndexOffset+i),
// so slot contents are byte-identical whatever the worker count or batch
// size.
func generateSlots(ctx context.Context, mech *Mechanism, cfg GenConfig, slots []dataset.Record) (GenStats, error) {
	start := time.Now()
	if cfg.Candidates == 0 {
		return GenStats{Elapsed: time.Since(start)}, ctx.Err()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Candidates {
		workers = cfg.Candidates
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = defaultGenBatch
	}

	hs, hot := mech.Synth.(hotSynthesizer)
	var st *ScanTable
	var pre testPre
	if hot {
		st = mech.ensureScan()
		var err error
		pre, err = newTestPre(mech)
		if err != nil {
			// Config was validated at construction; failing here means the
			// mechanism was mutated invalid afterwards, which is a
			// programming error (Once panics the same way).
			panic(err)
		}
	}

	// Nil slot entries (rejected or cancelled) are squeezed out by the
	// caller, so the released sequence follows candidate index order
	// whatever the goroutine scheduling.
	var (
		total  genCounters
		mu     sync.Mutex
		cursor atomic.Int64
	)
	done := ctx.Done()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var c genCounters
			var sc *genScratch
			var arena recordArena
			if hot {
				sc = newGenScratch(len(mech.Seeds.Meta.Attrs))
			}
			seeder := rng.NewStreamSeeder(cfg.Seed)
			r := rng.New(0) // reseeded per candidate below
		claim:
			for {
				select {
				case <-done:
					break claim
				default:
				}
				hi := int(cursor.Add(int64(batch)))
				lo := hi - batch
				if lo >= cfg.Candidates {
					break
				}
				if hi > cfg.Candidates {
					hi = cfg.Candidates
				}
				seeder.Seek(cfg.IndexOffset + uint64(lo))
				for i := lo; i < hi; i++ {
					seeder.Reseed(r)
					var (
						y   dataset.Record
						res TestResult
						ok  bool
					)
					if hot {
						// Scratch-buffer generation: only passing candidates
						// are copied out (through the arena); the rest cost
						// zero allocations.
						y, res, ok = mech.onceFast(hs, sc, st, &pre, r)
						if ok {
							y = arena.clone(y)
						}
					} else {
						y, res, ok = mech.Once(r)
					}
					c.cands++
					c.checked += int64(res.Checked)
					if res.SeedProb <= 0 {
						c.rejected++
					}
					if ok {
						slots[i] = y
						c.pass++
					}
				}
			}
			mu.Lock()
			total.cands += c.cands
			total.pass += c.pass
			total.checked += c.checked
			total.rejected += c.rejected
			mu.Unlock()
		}()
	}
	wg.Wait()

	stats := GenStats{
		Candidates:   int(total.cands),
		Released:     int(total.pass),
		SeedRejected: int(total.rejected),
		CheckedTotal: total.checked,
		Elapsed:      time.Since(start),
	}
	return stats, ctx.Err()
}

// GenerateTarget keeps drawing candidates until `target` records have been
// released or maxCandidates candidates have been drawn (0 = 100×target).
// It is the convenient entry point when a synthetic dataset of a given size
// is wanted and the pass rate is unknown.
func GenerateTarget(mech *Mechanism, target, maxCandidates int, workers int, seed uint64) (*dataset.Dataset, GenStats, error) {
	return GenerateTargetCtx(context.Background(), mech, target, maxCandidates, workers, seed)
}

// GenerateTargetCtx is GenerateTarget with cancellation: an aborted caller
// (e.g. a closed HTTP request) stops workers at the next candidate
// boundary, and what was released so far is returned together with ctx's
// error.
func GenerateTargetCtx(ctx context.Context, mech *Mechanism, target, maxCandidates int, workers int, seed uint64) (*dataset.Dataset, GenStats, error) {
	out := dataset.New(mech.Seeds.Meta)
	stats, err := GenerateTargetStream(ctx, mech, target, maxCandidates, workers, seed, func(batch []dataset.Record) error {
		for _, r := range batch {
			out.Append(r)
		}
		return nil
	})
	return out, stats, err
}

// GenerateTargetStream is the incremental form of GenerateTargetCtx: every
// batch of released records is handed to sink as soon as it is available
// (never more than `target` records in total), so a serving layer can
// stream synthetics while generation is still running. sink runs on the
// caller's goroutine, in deterministic order; a sink error aborts the run.
// The batch slice is reused between calls — sinks must not retain it past
// the call (the records themselves are theirs to keep). The batching
// schedule depends only on the released/candidate counts, which — by the
// GenerateCtx determinism contract — depend only on the seed, so the
// concatenation of all batches is identical for any worker count.
//
// The returned GenStats reports Released as the number of records actually
// delivered to the sink: candidates that passed the privacy test but were
// trimmed off an overshooting final chunk, or whose batch failed to
// deliver, are not counted, so ledger settlement and client-visible
// trailers can use Released directly.
func GenerateTargetStream(ctx context.Context, mech *Mechanism, target, maxCandidates int, workers int, seed uint64, sink func(batch []dataset.Record) error) (GenStats, error) {
	if target <= 0 {
		return GenStats{}, fmt.Errorf("core: target must be positive, got %d", target)
	}
	if maxCandidates <= 0 {
		maxCandidates = 100 * target
	}
	// maxChunk bounds one batch's candidate count, and with it the size of
	// the per-candidate slot buffer, whatever target a caller asks for.
	const maxChunk = 1 << 20
	var total GenStats
	var slots, rows []dataset.Record
	start := time.Now()
	chunk := target
	for total.Released < target && total.Candidates < maxCandidates {
		remaining := maxCandidates - total.Candidates
		if chunk > remaining {
			chunk = remaining
		}
		if chunk > maxChunk {
			chunk = maxChunk
		}
		// Reuse the slot buffer across chunks; generateSlots requires the
		// prefix it writes into to be nil-cleared.
		if cap(slots) < chunk {
			slots = make([]dataset.Record, chunk)
		} else {
			slots = slots[:chunk]
			for i := range slots {
				slots[i] = nil
			}
		}
		// One seed for the whole run; batches advance IndexOffset so every
		// candidate draws a distinct stream keyed on (seed, global index).
		stats, err := generateSlots(ctx, mech, GenConfig{
			Candidates:  chunk,
			Workers:     workers,
			Seed:        seed,
			IndexOffset: uint64(total.Candidates),
		}, slots)
		total.Candidates += stats.Candidates
		total.CheckedTotal += stats.CheckedTotal
		total.SeedRejected += stats.SeedRejected
		rows = rows[:0]
		keep := target - total.Released
		for _, y := range slots {
			if y != nil {
				rows = append(rows, y)
				if len(rows) == keep {
					break // overshoot: trimmed rows are never delivered, never counted
				}
			}
		}
		var sinkErr error
		if len(rows) > 0 {
			// Deliver even when the chunk was cancelled mid-run, so "what was
			// released so far" really reaches the caller — but count only what
			// the sink accepted: a failed client write is not a release.
			sinkStart := time.Now()
			sinkErr = sink(rows)
			total.SinkElapsed += time.Since(sinkStart)
			if sinkErr == nil {
				total.Released += len(rows)
			}
		}
		if err != nil {
			total.Elapsed = time.Since(start)
			if sinkErr != nil {
				return total, errors.Join(err, sinkErr)
			}
			return total, err
		}
		if sinkErr != nil {
			total.Elapsed = time.Since(start)
			return total, sinkErr
		}
		// Adapt the next chunk to the observed pass rate.
		need := target - total.Released
		if need > 0 {
			rate := stats.PassRate()
			if rate < 0.01 {
				rate = 0.01
			}
			chunk = int(float64(need)/rate) + 1
		}
	}
	total.Elapsed = time.Since(start)
	if total.Released < target {
		return total, fmt.Errorf("core: released only %d/%d records after %d candidates", total.Released, target, total.Candidates)
	}
	return total, nil
}
