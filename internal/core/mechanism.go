package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// Mechanism is Mechanism 1 of §2: sample a seed from the seed dataset,
// generate a candidate synthetic with the generative model, and release it
// only if the privacy test passes.
type Mechanism struct {
	// Synth draws candidates from the generative model and prices their
	// generation probabilities for the privacy test.
	Synth Synthesizer
	// Seeds is the synthesis split DS of the input dataset.
	Seeds *dataset.Dataset
	// Test configures the plausible-deniability test applied to every
	// candidate before release.
	Test TestConfig
}

// NewMechanism validates the configuration (|D| ≥ k is required by
// Definition 1 and Theorem 1).
func NewMechanism(syn Synthesizer, seeds *dataset.Dataset, test TestConfig) (*Mechanism, error) {
	if err := test.Validate(); err != nil {
		return nil, err
	}
	if seeds.Len() < test.K {
		return nil, fmt.Errorf("core: seed dataset has %d records, need at least k=%d", seeds.Len(), test.K)
	}
	return &Mechanism{Synth: syn, Seeds: seeds, Test: test}, nil
}

// Once runs one iteration of Mechanism 1: it returns the candidate, the
// test outcome, and whether the candidate may be released. The candidate is
// returned even when the test fails so that callers can account for it
// (the tool emits all candidates and marks which passed, §6.5); callers
// must release only records with ok == true.
func (m *Mechanism) Once(r *rng.RNG) (dataset.Record, TestResult, bool) {
	seed := m.Seeds.Row(r.Intn(m.Seeds.Len()))
	y := m.Synth.Generate(seed, r)
	res, err := RunTest(m.Synth, m.Seeds, seed, y, m.Test, r)
	if err != nil {
		// Config was validated at construction; an error here means the
		// dataset emptied underneath us, which is a programming error.
		panic(err)
	}
	return y, res, res.Pass
}

// genScratch is a generation worker's reusable state: the candidate record
// buffer and the prober precomputation, allocated once per worker instead
// of once per candidate.
type genScratch struct {
	rec dataset.Record
	ps  proberState
	// probe is the bound method value of ps.proberEval, created once so the
	// per-candidate test does not allocate a closure.
	probe func(dataset.Record) float64
}

func newGenScratch(numAttrs int) *genScratch {
	sc := &genScratch{rec: make(dataset.Record, numAttrs)}
	sc.probe = sc.ps.proberEval
	return sc
}

// onceInto is Once through the allocation-free hot path: the candidate is
// generated into sc.rec (the returned record ALIASES sc.rec — clone it to
// keep it past the next iteration) and the privacy test runs on reused
// prober state. It consumes exactly the RNG state Once would, and returns
// exactly the same values.
func (m *Mechanism) onceInto(hs hotSynthesizer, sc *genScratch, r *rng.RNG) (dataset.Record, TestResult, bool) {
	seed := m.Seeds.Row(r.Intn(m.Seeds.Len()))
	hs.generateInto(sc.rec, seed, r)
	hs.proberInit(sc.rec, &sc.ps)
	res, err := runTestScratch(&sc.ps, sc.probe, m.Seeds, seed, m.Test, r)
	if err != nil {
		panic(err)
	}
	return sc.rec, res, res.Pass
}

// ReleaseBudget returns the per-released-record (ε, δ) differential privacy
// guarantee of Theorem 1 for this mechanism's parameters, optimized over
// the trade-off parameter t. The boolean is false for the deterministic
// test (no DP guarantee) or when no t meets the δ target.
func (m *Mechanism) ReleaseBudget(maxDelta float64) (privacy.Budget, bool) {
	if !m.Test.Randomized {
		return privacy.Budget{}, false
	}
	b, _, ok := privacy.BestReleaseBudget(m.Test.K, m.Test.Gamma, m.Test.Eps0, maxDelta)
	return b, ok
}

// GenStats aggregates the outcome of a generation run.
type GenStats struct {
	// Candidates is the number of candidate synthetics generated.
	Candidates int
	// Released is the number of records released to the caller. For
	// GenerateCtx this is exactly the privacy-test pass count; for
	// GenerateTargetStream it is capped at what the sink actually accepted
	// (trimmed overshoot and failed deliveries are excluded).
	Released int
	// SeedRejected counts candidates whose own seed had zero generation
	// probability (cannot happen with seed-based synthesis; tracked for
	// generality).
	SeedRejected int
	// CheckedTotal is the total number of plausible-seed examinations.
	CheckedTotal int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// SinkElapsed is the portion of Elapsed spent inside the caller's sink
	// (GenerateTargetStream only): delivery/flush time as opposed to
	// generation time, so a serving layer can report the two stages apart.
	SinkElapsed time.Duration
}

// PassRate returns Released/Candidates (0 when no candidates were drawn).
func (s GenStats) PassRate() float64 {
	if s.Candidates == 0 {
		return 0
	}
	return float64(s.Released) / float64(s.Candidates)
}

// GenConfig controls a generation run.
type GenConfig struct {
	// Candidates is the number of candidate synthetics to draw.
	Candidates int
	// Workers is the parallelism degree; 0 means GOMAXPROCS. Synthesis of
	// one record is independent of all others (§5), so the run scales
	// embarrassingly.
	Workers int
	// Seed seeds the run's deterministic RNG tree.
	Seed uint64
	// IndexOffset shifts the candidate indices used for RNG stream
	// derivation: candidate i draws from rng.NewStream(Seed, IndexOffset+i).
	// A multi-batch driver sets it to the number of candidates already
	// drawn, so every candidate of the whole run gets a distinct stream
	// without perturbing the seed (two runs whose seeds differ must never
	// share streams, which perturbed seeds — e.g. seed+batch — would cause).
	IndexOffset uint64
}

// Generate runs Mechanism 1 cfg.Candidates times and returns the released
// synthetic records. See GenerateCtx for the determinism contract.
func Generate(mech *Mechanism, cfg GenConfig) (*dataset.Dataset, GenStats, error) {
	return GenerateCtx(context.Background(), mech, cfg)
}

// GenerateCtx runs Mechanism 1 cfg.Candidates times and returns the released
// synthetic records, stopping early when ctx is cancelled (the partial
// output, the stats so far, and ctx's error are returned in that case).
//
// Determinism contract: candidate i draws all of its randomness from
// rng.NewStream(cfg.Seed, i), and releases are concatenated in candidate
// index order. Workers shard the index space, so the released sequence is
// byte-identical for a fixed seed REGARDLESS of cfg.Workers — a serving
// layer may size parallelism to the current load without perturbing
// results.
func GenerateCtx(ctx context.Context, mech *Mechanism, cfg GenConfig) (*dataset.Dataset, GenStats, error) {
	if cfg.Candidates < 0 {
		return nil, GenStats{}, fmt.Errorf("core: negative candidate count %d", cfg.Candidates)
	}
	slots := make([]dataset.Record, cfg.Candidates)
	stats, err := generateSlots(ctx, mech, cfg, slots)
	released := make([]dataset.Record, 0, stats.Released)
	for _, y := range slots {
		if y != nil {
			released = append(released, y)
		}
	}
	return dataset.FromRecords(mech.Seeds.Meta, released), stats, err
}

// generateSlots runs the candidate loop of GenerateCtx into caller-owned
// per-candidate slots (len(slots) == cfg.Candidates, all entries nil on
// entry): slot i receives candidate i's record iff it passed the privacy
// test. Letting the caller own the slots is what allows
// GenerateTargetStream to reuse one allocation across its chunks.
func generateSlots(ctx context.Context, mech *Mechanism, cfg GenConfig, slots []dataset.Record) (GenStats, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Candidates && cfg.Candidates > 0 {
		workers = cfg.Candidates
	}

	start := time.Now()
	var (
		cands    int64
		pass     int64
		checked  int64
		rejected int64
	)
	// Nil slot entries (rejected or cancelled) are squeezed out by the
	// caller, so the released sequence follows candidate index order
	// whatever the goroutine scheduling.
	hs, hot := mech.Synth.(hotSynthesizer)
	done := ctx.Done()
	var wg sync.WaitGroup
	lo := 0
	for w := 0; w < workers; w++ {
		share := cfg.Candidates / workers
		if w < cfg.Candidates%workers {
			share++
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var sc *genScratch
			if hot {
				sc = newGenScratch(len(mech.Seeds.Meta.Attrs))
			}
			r := rng.New(0) // reseeded per candidate below
			for i := lo; i < hi; i++ {
				select {
				case <-done:
					return
				default:
				}
				r.ReseedStream(cfg.Seed, cfg.IndexOffset+uint64(i))
				var (
					y   dataset.Record
					res TestResult
					ok  bool
				)
				if hot {
					// Scratch-buffer generation: only passing candidates are
					// cloned out; the rest cost zero allocations.
					y, res, ok = mech.onceInto(hs, sc, r)
					if ok {
						y = y.Clone()
					}
				} else {
					y, res, ok = mech.Once(r)
				}
				atomic.AddInt64(&cands, 1)
				atomic.AddInt64(&checked, int64(res.Checked))
				if res.SeedProb <= 0 {
					atomic.AddInt64(&rejected, 1)
				}
				if ok {
					slots[i] = y
					atomic.AddInt64(&pass, 1)
				}
			}
		}(lo, lo+share)
		lo += share
	}
	wg.Wait()

	stats := GenStats{
		Candidates:   int(cands),
		Released:     int(pass),
		SeedRejected: int(rejected),
		CheckedTotal: checked,
		Elapsed:      time.Since(start),
	}
	return stats, ctx.Err()
}

// GenerateTarget keeps drawing candidates until `target` records have been
// released or maxCandidates candidates have been drawn (0 = 100×target).
// It is the convenient entry point when a synthetic dataset of a given size
// is wanted and the pass rate is unknown.
func GenerateTarget(mech *Mechanism, target, maxCandidates int, workers int, seed uint64) (*dataset.Dataset, GenStats, error) {
	return GenerateTargetCtx(context.Background(), mech, target, maxCandidates, workers, seed)
}

// GenerateTargetCtx is GenerateTarget with cancellation: an aborted caller
// (e.g. a closed HTTP request) stops workers at the next candidate
// boundary, and what was released so far is returned together with ctx's
// error.
func GenerateTargetCtx(ctx context.Context, mech *Mechanism, target, maxCandidates int, workers int, seed uint64) (*dataset.Dataset, GenStats, error) {
	out := dataset.New(mech.Seeds.Meta)
	stats, err := GenerateTargetStream(ctx, mech, target, maxCandidates, workers, seed, func(batch []dataset.Record) error {
		for _, r := range batch {
			out.Append(r)
		}
		return nil
	})
	return out, stats, err
}

// GenerateTargetStream is the incremental form of GenerateTargetCtx: every
// batch of released records is handed to sink as soon as it is available
// (never more than `target` records in total), so a serving layer can
// stream synthetics while generation is still running. sink runs on the
// caller's goroutine, in deterministic order; a sink error aborts the run.
// The batch slice is reused between calls — sinks must not retain it past
// the call (the records themselves are theirs to keep). The batching
// schedule depends only on the released/candidate counts, which — by the
// GenerateCtx determinism contract — depend only on the seed, so the
// concatenation of all batches is identical for any worker count.
//
// The returned GenStats reports Released as the number of records actually
// delivered to the sink: candidates that passed the privacy test but were
// trimmed off an overshooting final chunk, or whose batch failed to
// deliver, are not counted, so ledger settlement and client-visible
// trailers can use Released directly.
func GenerateTargetStream(ctx context.Context, mech *Mechanism, target, maxCandidates int, workers int, seed uint64, sink func(batch []dataset.Record) error) (GenStats, error) {
	if target <= 0 {
		return GenStats{}, fmt.Errorf("core: target must be positive, got %d", target)
	}
	if maxCandidates <= 0 {
		maxCandidates = 100 * target
	}
	// maxChunk bounds one batch's candidate count, and with it the size of
	// the per-candidate slot buffer, whatever target a caller asks for.
	const maxChunk = 1 << 20
	var total GenStats
	var slots, rows []dataset.Record
	start := time.Now()
	chunk := target
	for total.Released < target && total.Candidates < maxCandidates {
		remaining := maxCandidates - total.Candidates
		if chunk > remaining {
			chunk = remaining
		}
		if chunk > maxChunk {
			chunk = maxChunk
		}
		// Reuse the slot buffer across chunks; generateSlots requires the
		// prefix it writes into to be nil-cleared.
		if cap(slots) < chunk {
			slots = make([]dataset.Record, chunk)
		} else {
			slots = slots[:chunk]
			for i := range slots {
				slots[i] = nil
			}
		}
		// One seed for the whole run; batches advance IndexOffset so every
		// candidate draws a distinct stream keyed on (seed, global index).
		stats, err := generateSlots(ctx, mech, GenConfig{
			Candidates:  chunk,
			Workers:     workers,
			Seed:        seed,
			IndexOffset: uint64(total.Candidates),
		}, slots)
		total.Candidates += stats.Candidates
		total.CheckedTotal += stats.CheckedTotal
		total.SeedRejected += stats.SeedRejected
		rows = rows[:0]
		keep := target - total.Released
		for _, y := range slots {
			if y != nil {
				rows = append(rows, y)
				if len(rows) == keep {
					break // overshoot: trimmed rows are never delivered, never counted
				}
			}
		}
		var sinkErr error
		if len(rows) > 0 {
			// Deliver even when the chunk was cancelled mid-run, so "what was
			// released so far" really reaches the caller — but count only what
			// the sink accepted: a failed client write is not a release.
			sinkStart := time.Now()
			sinkErr = sink(rows)
			total.SinkElapsed += time.Since(sinkStart)
			if sinkErr == nil {
				total.Released += len(rows)
			}
		}
		if err != nil {
			total.Elapsed = time.Since(start)
			if sinkErr != nil {
				return total, errors.Join(err, sinkErr)
			}
			return total, err
		}
		if sinkErr != nil {
			total.Elapsed = time.Since(start)
			return total, sinkErr
		}
		// Adapt the next chunk to the observed pass rate.
		need := target - total.Released
		if need > 0 {
			rate := stats.PassRate()
			if rate < 0.01 {
				rate = 0.01
			}
			chunk = int(float64(need)/rate) + 1
		}
	}
	total.Elapsed = time.Since(start)
	if total.Released < target {
		return total, fmt.Errorf("core: released only %d/%d records after %d candidates", total.Released, target, total.Candidates)
	}
	return total, nil
}
