package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// Mechanism is Mechanism 1 of §2: sample a seed from the seed dataset,
// generate a candidate synthetic with the generative model, and release it
// only if the privacy test passes.
type Mechanism struct {
	Synth Synthesizer
	// Seeds is the synthesis split DS of the input dataset.
	Seeds *dataset.Dataset
	Test  TestConfig
}

// NewMechanism validates the configuration (|D| ≥ k is required by
// Definition 1 and Theorem 1).
func NewMechanism(syn Synthesizer, seeds *dataset.Dataset, test TestConfig) (*Mechanism, error) {
	if err := test.Validate(); err != nil {
		return nil, err
	}
	if seeds.Len() < test.K {
		return nil, fmt.Errorf("core: seed dataset has %d records, need at least k=%d", seeds.Len(), test.K)
	}
	return &Mechanism{Synth: syn, Seeds: seeds, Test: test}, nil
}

// Once runs one iteration of Mechanism 1: it returns the candidate, the
// test outcome, and whether the candidate may be released. The candidate is
// returned even when the test fails so that callers can account for it
// (the tool emits all candidates and marks which passed, §6.5); callers
// must release only records with ok == true.
func (m *Mechanism) Once(r *rng.RNG) (dataset.Record, TestResult, bool) {
	seed := m.Seeds.Row(r.Intn(m.Seeds.Len()))
	y := m.Synth.Generate(seed, r)
	res, err := RunTest(m.Synth, m.Seeds, seed, y, m.Test, r)
	if err != nil {
		// Config was validated at construction; an error here means the
		// dataset emptied underneath us, which is a programming error.
		panic(err)
	}
	return y, res, res.Pass
}

// ReleaseBudget returns the per-released-record (ε, δ) differential privacy
// guarantee of Theorem 1 for this mechanism's parameters, optimized over
// the trade-off parameter t. The boolean is false for the deterministic
// test (no DP guarantee) or when no t meets the δ target.
func (m *Mechanism) ReleaseBudget(maxDelta float64) (privacy.Budget, bool) {
	if !m.Test.Randomized {
		return privacy.Budget{}, false
	}
	b, _, ok := privacy.BestReleaseBudget(m.Test.K, m.Test.Gamma, m.Test.Eps0, maxDelta)
	return b, ok
}

// GenStats aggregates the outcome of a generation run.
type GenStats struct {
	// Candidates is the number of candidate synthetics generated.
	Candidates int
	// Released is the number that passed the privacy test.
	Released int
	// SeedRejected counts candidates whose own seed had zero generation
	// probability (cannot happen with seed-based synthesis; tracked for
	// generality).
	SeedRejected int
	// CheckedTotal is the total number of plausible-seed examinations.
	CheckedTotal int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// PassRate returns Released/Candidates (0 when no candidates were drawn).
func (s GenStats) PassRate() float64 {
	if s.Candidates == 0 {
		return 0
	}
	return float64(s.Released) / float64(s.Candidates)
}

// GenConfig controls a generation run.
type GenConfig struct {
	// Candidates is the number of candidate synthetics to draw.
	Candidates int
	// Workers is the parallelism degree; 0 means GOMAXPROCS. Synthesis of
	// one record is independent of all others (§5), so the run scales
	// embarrassingly.
	Workers int
	// Seed seeds the run's deterministic RNG tree.
	Seed uint64
}

// Generate runs Mechanism 1 cfg.Candidates times and returns the released
// synthetic records. Workers operate on disjoint RNG streams split off a
// root stream and results are concatenated in worker order, so the released
// sequence is deterministic for a fixed seed and worker count.
func Generate(mech *Mechanism, cfg GenConfig) (*dataset.Dataset, GenStats, error) {
	if cfg.Candidates < 0 {
		return nil, GenStats{}, fmt.Errorf("core: negative candidate count %d", cfg.Candidates)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Candidates && cfg.Candidates > 0 {
		workers = cfg.Candidates
	}

	start := time.Now()
	root := rng.New(cfg.Seed)
	streams := make([]*rng.RNG, workers)
	for w := range streams {
		streams[w] = root.Split()
	}

	var (
		cands    int64
		pass     int64
		checked  int64
		rejected int64
	)
	// Per-worker result slots, concatenated in worker order afterwards, so
	// the released sequence is deterministic for a fixed seed and worker
	// count (goroutine completion order is not).
	perWorker := make([][]dataset.Record, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		share := cfg.Candidates / workers
		if w < cfg.Candidates%workers {
			share++
		}
		wg.Add(1)
		go func(w int, r *rng.RNG, share int) {
			defer wg.Done()
			local := make([]dataset.Record, 0, share/2)
			for i := 0; i < share; i++ {
				y, res, ok := mech.Once(r)
				atomic.AddInt64(&cands, 1)
				atomic.AddInt64(&checked, int64(res.Checked))
				if res.SeedProb <= 0 {
					atomic.AddInt64(&rejected, 1)
				}
				if ok {
					local = append(local, y)
					atomic.AddInt64(&pass, 1)
				}
			}
			perWorker[w] = local
		}(w, streams[w], share)
	}
	wg.Wait()

	var released []dataset.Record
	for _, local := range perWorker {
		released = append(released, local...)
	}
	out := dataset.FromRecords(mech.Seeds.Meta, released)
	stats := GenStats{
		Candidates:   int(cands),
		Released:     int(pass),
		SeedRejected: int(rejected),
		CheckedTotal: checked,
		Elapsed:      time.Since(start),
	}
	return out, stats, nil
}

// GenerateTarget keeps drawing candidates until `target` records have been
// released or maxCandidates candidates have been drawn (0 = 100×target).
// It is the convenient entry point when a synthetic dataset of a given size
// is wanted and the pass rate is unknown.
func GenerateTarget(mech *Mechanism, target, maxCandidates int, workers int, seed uint64) (*dataset.Dataset, GenStats, error) {
	if target <= 0 {
		return nil, GenStats{}, fmt.Errorf("core: target must be positive, got %d", target)
	}
	if maxCandidates <= 0 {
		maxCandidates = 100 * target
	}
	out := dataset.New(mech.Seeds.Meta)
	var total GenStats
	start := time.Now()
	chunk := target
	rootSeed := seed
	for out.Len() < target && total.Candidates < maxCandidates {
		remaining := maxCandidates - total.Candidates
		if chunk > remaining {
			chunk = remaining
		}
		batch, stats, err := Generate(mech, GenConfig{Candidates: chunk, Workers: workers, Seed: rootSeed})
		if err != nil {
			return nil, total, err
		}
		rootSeed++
		total.Candidates += stats.Candidates
		total.Released += stats.Released
		total.CheckedTotal += stats.CheckedTotal
		for _, r := range batch.Rows() {
			if out.Len() >= target {
				break
			}
			out.Append(r)
		}
		// Adapt the next chunk to the observed pass rate.
		need := target - out.Len()
		if need > 0 {
			rate := stats.PassRate()
			if rate < 0.01 {
				rate = 0.01
			}
			chunk = int(float64(need)/rate) + 1
		}
	}
	total.Elapsed = time.Since(start)
	if out.Len() < target {
		return out, total, fmt.Errorf("core: released only %d/%d records after %d candidates", out.Len(), target, total.Candidates)
	}
	return out, total, nil
}
