package core

import (
	"bytes"
	"context"
	"sort"
	"testing"

	"repro/internal/dataset"
)

// sortedKeys renders a dataset as its sorted multiset of record keys, the
// canonical worker-count-independent fingerprint.
func sortedKeys(d *dataset.Dataset) []string {
	keys := make([]string, d.Len())
	for i, r := range d.Rows() {
		keys[i] = r.Key()
	}
	sort.Strings(keys)
	return keys
}

// TestGenerateTargetWorkerCountInvariance guards the RNG-stream-splitting
// contract: candidate i draws from rng.NewStream(seed, i) regardless of
// which worker runs it, so for a fixed seed GenerateTarget must produce
// byte-identical output for Workers=1 and Workers=8 — sorted AND in
// sequence order.
func TestGenerateTargetWorkerCountInvariance(t *testing.T) {
	model := tinyModel(t, 71)
	syn, err := NewSeedSynthesizer(model, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	seeds := tinySeeds(t, model, 300, 73)
	mech, err := NewMechanism(syn, seeds, TestConfig{K: 2, Gamma: 8})
	if err != nil {
		t.Fatal(err)
	}

	out1, stats1, err := GenerateTarget(mech, 40, 0, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	out8, stats8, err := GenerateTarget(mech, 40, 0, 8, 99)
	if err != nil {
		t.Fatal(err)
	}

	if stats1.Candidates != stats8.Candidates || stats1.Released != stats8.Released {
		t.Errorf("stats diverge across worker counts: 1 worker %+v, 8 workers %+v", stats1, stats8)
	}
	if out1.Len() != out8.Len() {
		t.Fatalf("released %d records with 1 worker, %d with 8", out1.Len(), out8.Len())
	}
	// Sequence order must already agree (sorted equality follows).
	for i := range out1.Rows() {
		if !out1.Row(i).Equal(out8.Row(i)) {
			t.Fatalf("record %d differs between 1 and 8 workers: %v vs %v", i, out1.Row(i), out8.Row(i))
		}
	}
	k1, k8 := sortedKeys(out1), sortedKeys(out8)
	for i := range k1 {
		if !bytes.Equal([]byte(k1[i]), []byte(k8[i])) {
			t.Fatalf("sorted output differs at position %d", i)
		}
	}
}

// TestGenerateIndexOffsetContract pins the stream-derivation contract used
// by multi-batch drivers: candidate i of a run with IndexOffset o draws
// from NewStream(seed, o+i), so a batch at offset o reproduces exactly the
// tail of one big batch — and two runs with different seeds never share
// candidate streams (the old seed+chunk scheme violated this for adjacent
// seeds).
func TestGenerateIndexOffsetContract(t *testing.T) {
	model := tinyModel(t, 91)
	syn, err := NewSeedSynthesizer(model, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	seeds := tinySeeds(t, model, 300, 93)
	mech, err := NewMechanism(syn, seeds, TestConfig{K: 2, Gamma: 8})
	if err != nil {
		t.Fatal(err)
	}

	full, fullStats, err := Generate(mech, GenConfig{Candidates: 60, Workers: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	head, headStats, err := Generate(mech, GenConfig{Candidates: 30, Workers: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tail, tailStats, err := Generate(mech, GenConfig{Candidates: 30, Workers: 4, Seed: 5, IndexOffset: 30})
	if err != nil {
		t.Fatal(err)
	}
	if headStats.Released+tailStats.Released != fullStats.Released {
		t.Fatalf("split run released %d+%d, full run %d",
			headStats.Released, tailStats.Released, fullStats.Released)
	}
	for i := 0; i < full.Len(); i++ {
		var want dataset.Record
		if i < head.Len() {
			want = head.Row(i)
		} else {
			want = tail.Row(i - head.Len())
		}
		if !full.Row(i).Equal(want) {
			t.Fatalf("record %d of the full run differs from the split runs", i)
		}
	}
}

// TestGenerateCtxCancellation checks that a cancelled context stops
// generation early and surfaces the context error.
func TestGenerateCtxCancellation(t *testing.T) {
	model := tinyModel(t, 75)
	syn, err := NewSeedSynthesizer(model, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	seeds := tinySeeds(t, model, 300, 77)
	mech, err := NewMechanism(syn, seeds, TestConfig{K: 2, Gamma: 8})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: no candidate should be drawn
	_, stats, err := GenerateCtx(ctx, mech, GenConfig{Candidates: 10000, Workers: 2, Seed: 3})
	if err != context.Canceled {
		t.Fatalf("GenerateCtx error = %v, want context.Canceled", err)
	}
	if stats.Candidates != 0 {
		t.Errorf("cancelled run still drew %d candidates", stats.Candidates)
	}

	_, _, err = GenerateTargetCtx(ctx, mech, 100, 0, 2, 3)
	if err != context.Canceled {
		t.Fatalf("GenerateTargetCtx error = %v, want context.Canceled", err)
	}
}

// TestGenerateTargetStreamMatchesCollect checks that the streamed batches
// concatenate to exactly the dataset GenerateTargetCtx returns.
func TestGenerateTargetStreamMatchesCollect(t *testing.T) {
	model := tinyModel(t, 79)
	syn, err := NewSeedSynthesizer(model, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	seeds := tinySeeds(t, model, 300, 81)
	mech, err := NewMechanism(syn, seeds, TestConfig{K: 2, Gamma: 8})
	if err != nil {
		t.Fatal(err)
	}

	var streamed []dataset.Record
	_, err = GenerateTargetStream(context.Background(), mech, 30, 0, 4, 11, func(batch []dataset.Record) error {
		streamed = append(streamed, batch...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	collected, _, err := GenerateTargetCtx(context.Background(), mech, 30, 0, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != collected.Len() {
		t.Fatalf("streamed %d records, collected %d", len(streamed), collected.Len())
	}
	for i := range streamed {
		if !streamed[i].Equal(collected.Row(i)) {
			t.Fatalf("record %d differs between stream and collect", i)
		}
	}
}
