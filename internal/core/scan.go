package core

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/rng"
)

// The privacy test's plausible-seed scan is the hot path's hot path: for
// every candidate it walks input records in a pseudo-random cyclic order
// and asks each one "could you have been the seed?". This file holds the
// batched kernel's scan machinery: a struct-of-arrays mirror of the seed
// dataset (records re-laid in σ order as one flat row-major array, so the
// per-record check is a handful of contiguous uint16 compares instead of a
// pointer chase through record slices and the order permutation), a
// precomputed coprime-stride mask replacing the per-candidate gcd walk, and
// the scan loop itself, which tests each record against a precomputed
// σ-agreement threshold instead of calling PartitionIndex or even touching
// a float. Decisions, counters and RNG consumption are bit-identical to the
// per-record path — pinned by the batch-identity and property suites.

// maxScanTableElems caps the flat mirror's size (uint16 elements). Above
// it, only the stride mask is built and the scan falls back to the
// per-record evaluator.
const maxScanTableElems = 1 << 27

// ScanTable is an immutable, shareable scan layout for one (seed dataset,
// σ order) pair: the flat struct-of-arrays mirror plus the coprime-stride
// mask. Building one costs O(n·m); serving layers cache it per fitted
// model (see sgf.FittedModel) and attach it to each Mechanism via the Scan
// field so per-request runs skip the rebuild. A nil ScanTable is always
// safe — the scan falls back to the per-record path.
type ScanTable struct {
	n, width int
	// flat holds the dataset re-laid row-major in σ order: row i occupies
	// flat[i*width : (i+1)*width] with position k holding record i's value
	// of attribute order[k]. nil when the mirror would exceed
	// maxScanTableElems.
	flat []uint16
	// mask is a bitset over [0, n): bit s is set iff gcd(s, n) == 1, so the
	// cyclic scan's stride walk needs one bit test per step instead of a
	// gcd loop.
	mask []uint64
}

// NewScanTable builds the scan layout for the dataset under the given
// attribute order (the synthesizer's σ). The dataset and order are read
// once and not retained.
func NewScanTable(data *dataset.Dataset, order []int) *ScanTable {
	n, m := data.Len(), len(order)
	t := &ScanTable{n: n, width: m, mask: coprimeMask(n)}
	if int64(n)*int64(m) <= maxScanTableElems {
		flat := make([]uint16, n*m)
		for i := 0; i < n; i++ {
			row := data.Row(i)
			base := i * m
			for k, attr := range order {
				flat[base+k] = row[attr]
			}
		}
		t.flat = flat
	}
	return t
}

// scanOrdered is implemented by synthesizers whose probers compare seeds
// against a candidate along a fixed attribute order — the precondition for
// the struct-of-arrays scan.
type scanOrdered interface {
	scanOrder() []int
}

// ScanTableFor builds the scan layout for a synthesizer over its seed
// dataset, or returns nil when the synthesizer has no fixed scan order
// (e.g. the constant-prober marginal baseline, which needs none: its scan
// is computed analytically).
func ScanTableFor(syn Synthesizer, seeds *dataset.Dataset) *ScanTable {
	so, ok := syn.(scanOrdered)
	if !ok {
		return nil
	}
	order := so.scanOrder()
	if len(order) != seeds.NumAttrs() {
		return nil
	}
	return NewScanTable(seeds, order)
}

// coprimeMask returns the bitset of s in [0, n) with gcd(s, n) == 1,
// built by clearing multiples of each prime factor of n.
func coprimeMask(n int) []uint64 {
	if n <= 0 {
		return nil
	}
	mask := make([]uint64, (n+63)/64)
	for i := range mask {
		mask[i] = ^uint64(0)
	}
	clearMultiples := func(p int) {
		for s := 0; s < n; s += p {
			mask[s>>6] &^= 1 << (uint(s) & 63)
		}
	}
	rem := n
	for p := 2; p*p <= rem; p++ {
		if rem%p == 0 {
			clearMultiples(p)
			for rem%p == 0 {
				rem /= p
			}
		}
	}
	if rem > 1 {
		clearMultiples(rem)
	}
	return mask
}

// coprime reports whether bit s is set in the mask.
func (t *ScanTable) coprime(s int) bool {
	return t.mask[s>>6]>>(uint(s)&63)&1 == 1
}

// strideFrom resolves the scan stride exactly as the gcd walk does: step
// forward (wrapping past n to 1) until a stride coprime with n is found.
func (t *ScanTable) strideFrom(s, n int) int {
	for !t.coprime(s) {
		s++
		if s >= n {
			s = 1
		}
	}
	return s
}

// testPre is the per-run precomputation of the privacy test: parameters
// validated once and limits resolved once, instead of per candidate.
type testPre struct {
	n, maxCheck, maxPlausible, k int
	logGamma, eps0               float64
	randomized                   bool
}

// newTestPre validates the mechanism's test configuration and resolves the
// scan limits for its seed dataset.
func newTestPre(m *Mechanism) (testPre, error) {
	if err := m.Test.Validate(); err != nil {
		return testPre{}, err
	}
	n := m.Seeds.Len()
	if n == 0 {
		return testPre{}, fmt.Errorf("core: privacy test on empty dataset")
	}
	pre := testPre{
		n:            n,
		maxCheck:     n,
		maxPlausible: math.MaxInt,
		k:            m.Test.K,
		logGamma:     math.Log(m.Test.Gamma),
		eps0:         m.Test.Eps0,
		randomized:   m.Test.Randomized,
	}
	if c := m.Test.MaxCheckPlausible; c > 0 && c < n {
		pre.maxCheck = c
	}
	if p := m.Test.MaxPlausible; p > 0 {
		pre.maxPlausible = p
	}
	return pre, nil
}

// runTestFast is the batched kernel's privacy test: identical RNG
// consumption, decisions and counters as RunTest over the same prober
// state, with the per-record work reduced to integer compares. The seed's
// partition and threshold are computed as before; the per-bucket partition
// memo is folded into a σ-agreement interval (see initPartitions), so the
// scan needs no floats at all. Three scan shapes:
//
//   - constant prober: every record matches or none does — the walk is
//     computed analytically in O(1) (it consumes no RNG).
//   - interval + flat table: records are tested with contiguous uint16
//     compares against the candidate's σ-prefix.
//   - fallback: the per-record evaluator, for oversized tables or a
//     non-contiguous partition memo.
func runTestFast(ps *proberState, st *ScanTable, pre *testPre, data *dataset.Dataset, seed dataset.Record, r *rng.RNG) TestResult {
	res := TestResult{SeedProb: ps.proberEval(seed)}

	part, ok := partitionIndexLog(res.SeedProb, pre.logGamma)
	if !ok {
		res.Threshold = float64(pre.k)
		return res
	}
	res.Partition = part

	res.Threshold = float64(pre.k)
	if pre.randomized {
		res.Threshold += r.Laplace(1 / pre.eps0)
	}

	ps.initPartitions(part, pre.logGamma)

	n, maxCheck := pre.n, pre.maxCheck
	// breakAt is the integer form of the loop's two exit conditions: the
	// count is an int, so count ≥ threshold ⟺ count ≥ ⌈threshold⌉. The
	// threshold is clamped before the ceil so an extreme Laplace draw can
	// not overflow the conversion; a threshold below 1 exits on the first
	// plausible record exactly as the float compare did.
	breakAt := pre.maxPlausible
	if t := res.Threshold; t < float64(breakAt) {
		if t < 1 {
			breakAt = 1
		} else if c := int(math.Ceil(t)); c < breakAt {
			breakAt = c
		}
	}

	// The cyclic-walk draws happen unconditionally, in the exact order of
	// the per-record path; the stride's coprime resolution consumes no RNG,
	// so scan shapes that never walk skip it.
	start := r.Intn(n)
	s0 := 1
	if n > 2 {
		s0 = 1 + r.Intn(n-1)
	}

	switch {
	case ps.constP >= 0:
		// Constant prober: the walk visits records whose content never
		// matters. Replaying it analytically: every visit checks one
		// record, a match increments the count, and the loop stops at
		// breakAt matches or maxCheck visits.
		if ps.constMatch {
			c := breakAt
			if c > maxCheck {
				c = maxCheck
			}
			res.Checked, res.PlausibleCount = c, c
		} else {
			res.Checked = maxCheck
		}
	case st != nil && st.flat != nil && ps.ivOK:
		stride := 1
		if n > 2 {
			stride = st.strideFrom(s0, n)
		}
		res.Checked, res.PlausibleCount = scanFlat(st, ps, n, maxCheck, breakAt, start, stride)
	default:
		stride := 1
		if n > 2 {
			if st != nil {
				stride = st.strideFrom(s0, n)
			} else {
				stride = s0
				for gcd(stride, n) != 1 {
					stride++
					if stride >= n {
						stride = 1
					}
				}
			}
		}
		idx := start
		for res.Checked < maxCheck {
			da := data.Row(idx)
			res.Checked++
			if ps.plausibleEval(da) {
				res.PlausibleCount++
				if res.PlausibleCount >= breakAt {
					break
				}
			}
			idx += stride
			if idx >= n {
				idx -= n
			}
		}
	}

	res.Pass = float64(res.PlausibleCount) >= res.Threshold
	return res
}

// scanFlat walks the flat σ-ordered mirror in cyclic order. A record is a
// plausible seed iff its σ-agreement length with the candidate falls in
// [jLo, jHi] (see initPartitions), which over the flat rows is: the first
// jLo positions agree, and — when the interval stops short of the top
// bucket — some position in [jLo, jHi] disagrees.
func scanFlat(st *ScanTable, ps *proberState, n, maxCheck, breakAt, start, stride int) (checked, count int) {
	flat, width := st.flat, st.width
	jLo, jHi := ps.jLo, ps.jHi
	needUpper := jHi < ps.hiIdx
	// A record's plausibility is a pure function of its first σ-disagreement
	// position a with the candidate, capped at stop: plausible ⟺ a ≥ jLo
	// and — when the interval stops short of the top bucket — a < stop.
	stop := jHi + 1
	if !needUpper {
		stop = jLo
	}
	if stop == 0 {
		// jLo == 0 with the interval reaching the top bucket: every record
		// matches, and the walk degenerates to the constant-match shape.
		if breakAt > maxCheck {
			breakAt = maxCheck
		}
		return breakAt, breakAt
	}
	yv := ps.yv[:stop]
	y0 := yv[0]
	// Walk row offsets directly: one add + wrap per record, no multiply.
	base := start * width
	step := stride * width
	limit := n * width
	if jLo > 0 {
		// Records disagreeing at position 0 are implausible, so the common
		// case is one load-compare-add per record.
		for checked < maxCheck {
			checked++
			if flat[base] == y0 {
				k := 1
				for k < stop && flat[base+k] == yv[k] {
					k++
				}
				if k >= jLo && (k < stop || !needUpper) {
					count++
					if count >= breakAt {
						break
					}
				}
			}
			base += step
			if base >= limit {
				base -= limit
			}
		}
		return checked, count
	}
	// jLo == 0: stop > 0 forces needUpper, so every record is plausible
	// unless it agrees with the whole σ-prefix [0, stop).
	for checked < maxCheck {
		checked++
		k := 0
		for k < stop && flat[base+k] == yv[k] {
			k++
		}
		if k < stop {
			count++
			if count >= breakAt {
				break
			}
		}
		base += step
		if base >= limit {
			base -= limit
		}
	}
	return checked, count
}
