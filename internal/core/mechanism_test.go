package core

import (
	"math"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rng"
)

func TestNewMechanismValidation(t *testing.T) {
	model := tinyModel(t, 50)
	syn, err := NewSeedSynthesizer(model, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	seeds := tinySeeds(t, model, 10, 51)
	if _, err := NewMechanism(syn, seeds, TestConfig{K: 20, Gamma: 2}); err == nil {
		t.Fatal("mechanism with k > |D| accepted")
	}
	if _, err := NewMechanism(syn, seeds, TestConfig{K: 5, Gamma: 1}); err == nil {
		t.Fatal("mechanism with gamma <= 1 accepted")
	}
	if _, err := NewMechanism(syn, seeds, TestConfig{K: 5, Gamma: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateCountsAndSoundness(t *testing.T) {
	model := tinyModel(t, 52)
	syn, err := NewSeedSynthesizer(model, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	seeds := tinySeeds(t, model, 400, 53)
	mech, err := NewMechanism(syn, seeds, TestConfig{K: 25, Gamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := Generate(mech, GenConfig{Candidates: 300, Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Candidates != 300 {
		t.Fatalf("Candidates = %d, want 300", stats.Candidates)
	}
	if stats.Released != out.Len() {
		t.Fatalf("Released %d != dataset size %d", stats.Released, out.Len())
	}
	if stats.Released == 0 {
		t.Fatal("nothing released; workload vacuous")
	}
	if stats.PassRate() <= 0 || stats.PassRate() > 1 {
		t.Fatalf("pass rate %g out of range", stats.PassRate())
	}
	// Every released record keeps the format of the input schema.
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministicForFixedSeedAndWorkers(t *testing.T) {
	model := tinyModel(t, 54)
	syn, err := NewSeedSynthesizer(model, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	seeds := tinySeeds(t, model, 200, 55)
	mech, err := NewMechanism(syn, seeds, TestConfig{K: 10, Gamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	run := func() []string {
		out, _, err := Generate(mech, GenConfig{Candidates: 200, Workers: 3, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, out.Len())
		for i, r := range out.Rows() {
			keys[i] = r.Key()
		}
		sort.Strings(keys)
		return keys
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("released multisets differ between identical runs")
		}
	}
}

func TestGenerateTargetReachesTarget(t *testing.T) {
	model := tinyModel(t, 56)
	syn, err := NewSeedSynthesizer(model, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	seeds := tinySeeds(t, model, 400, 57)
	mech, err := NewMechanism(syn, seeds, TestConfig{K: 10, Gamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := GenerateTarget(mech, 50, 0, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 50 {
		t.Fatalf("target run returned %d records", out.Len())
	}
	if stats.Candidates < 50 {
		t.Fatalf("stats inconsistent: %d candidates < 50 released", stats.Candidates)
	}
}

func TestGenerateTargetFailsWhenImpossible(t *testing.T) {
	model := tinyModel(t, 58)
	syn, err := NewSeedSynthesizer(model, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	seeds := tinySeeds(t, model, 60, 59)
	// k equal to the dataset size: essentially nothing passes with ω=1
	// (plausible seeds must share the two kept attribute values).
	mech, err := NewMechanism(syn, seeds, TestConfig{K: 60, Gamma: 1.0001})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = GenerateTarget(mech, 10, 100, 2, 4)
	if err == nil {
		t.Fatal("impossible target succeeded")
	}
}

func TestMarginalMechanismAlwaysPasses(t *testing.T) {
	model := tinyModel(t, 60)
	marg := marginalSynth(t, model)
	seeds := tinySeeds(t, model, 200, 61)
	mech, err := NewMechanism(marg, seeds, TestConfig{K: 50, Gamma: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := Generate(mech, GenConfig{Candidates: 100, Workers: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Released != stats.Candidates {
		t.Fatalf("seed-independent synthesis should always pass: %d/%d", stats.Released, stats.Candidates)
	}
}

func TestReleaseBudgetExposed(t *testing.T) {
	model := tinyModel(t, 62)
	syn, err := NewSeedSynthesizer(model, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	seeds := tinySeeds(t, model, 200, 63)
	det, err := NewMechanism(syn, seeds, TestConfig{K: 50, Gamma: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := det.ReleaseBudget(1e-9); ok {
		t.Fatal("deterministic test claimed a DP budget")
	}
	rnd, err := NewMechanism(syn, seeds, TestConfig{K: 50, Gamma: 4, Randomized: true, Eps0: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, ok := rnd.ReleaseBudget(1e-9)
	if !ok {
		t.Fatal("no feasible budget for k=50, eps0=1")
	}
	if b.Epsilon <= 1 || b.Delta > 1e-9 {
		t.Fatalf("implausible budget %v", b)
	}
}

// TestTheorem1Empirical estimates the output distribution of Mechanism 1 +
// Privacy Test 2 on neighboring datasets over a tiny universe and checks
// the (ε, δ) inequality of Theorem 1 for every singleton outcome. Monte
// Carlo noise is handled with a small multiplicative slack: a true
// violation of the theorem would overshoot far beyond it.
func TestTheorem1Empirical(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo check skipped in -short mode")
	}
	model := tinyModel(t, 64)
	syn, err := NewSeedSynthesizer(model, 1, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Neighboring datasets: D (12 records) and D' = D ∪ {d'}.
	base := tinySeeds(t, model, 12, 65)
	dPrime := dataset.Record{1, 2, 1}
	neighbor := base.Clone()
	neighbor.Append(dPrime)

	cfg := TestConfig{K: 6, Gamma: 2, Randomized: true, Eps0: 1}
	mechD, err := NewMechanism(syn, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mechDPrime, err := NewMechanism(syn, neighbor, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const draws = 600000
	estimate := func(m *Mechanism, seed uint64) map[string]float64 {
		r := rng.New(seed)
		freq := map[string]float64{}
		for i := 0; i < draws; i++ {
			y, _, ok := m.Once(r)
			if ok {
				freq[y.Key()]++
			}
		}
		for k := range freq {
			freq[k] /= draws
		}
		return freq
	}
	pD := estimate(mechD, 100)
	pDPrime := estimate(mechDPrime, 200)

	// Theorem 1 with t = 3: ε = ε0 + ln(1 + γ/t), δ = e^(−ε0(k−t)).
	tpar := 3
	eps := cfg.Eps0 + math.Log(1+cfg.Gamma/float64(tpar))
	delta := math.Exp(-cfg.Eps0 * float64(cfg.K-tpar))
	slack := 1.15 // Monte-Carlo tolerance

	keys := map[string]bool{}
	for k := range pD {
		keys[k] = true
	}
	for k := range pDPrime {
		keys[k] = true
	}
	for k := range keys {
		// Only check outcomes estimated with enough mass for MC stability.
		if pD[k] < 50.0/draws && pDPrime[k] < 50.0/draws {
			continue
		}
		if pDPrime[k] > slack*(math.Exp(eps)*pD[k]+delta) {
			t.Errorf("outcome %q: P'(y)=%.2e exceeds e^ε·P(y)+δ = %.2e",
				k, pDPrime[k], math.Exp(eps)*pD[k]+delta)
		}
		if pD[k] > slack*(math.Exp(eps)*pDPrime[k]+delta) {
			t.Errorf("outcome %q: P(y)=%.2e exceeds e^ε·P'(y)+δ = %.2e",
				k, pD[k], math.Exp(eps)*pDPrime[k]+delta)
		}
	}
}
