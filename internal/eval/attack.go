package eval

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/rng"
)

// AttackResult reports the seed-inference experiment: a maximum-likelihood
// adversary who knows the input dataset, the model, and the synthesis
// parameters tries to identify the seed of each candidate synthetic.
//
// This is the empirical counterpart of plausible deniability: for a
// released record with k' plausible seeds of equal generation probability,
// the best possible guess succeeds with probability ≤ 1/k'. Records the
// privacy test rejects are exactly those with few plausible seeds, so the
// adversary should do markedly better on them — quantifying what the test
// protects against (cf. the inference-based risk assessments of Reiter et
// al. discussed in §7).
type AttackResult struct {
	// Candidates is the number of candidate synthetics probed.
	Candidates int
	// Released / Rejected are the per-group candidate counts.
	Released, Rejected int
	// SuccessReleased is the adversary's expected success rate on records
	// that passed the privacy test.
	SuccessReleased float64
	// SuccessRejected is the success rate on records the test rejected
	// (these are never published; the rate shows what the test prevented).
	SuccessRejected float64
	// BoundReleased is the plausible-deniability bound 1/k for the test's
	// k parameter.
	BoundReleased float64
}

// Render formats the attack outcome.
func (r *AttackResult) Render() string {
	return fmt.Sprintf(
		"Seed-inference attack (%d candidates)\n"+
			"released  %5d records: ML-adversary success %.4f (PD bound 1/k = %.4f)\n"+
			"rejected  %5d records: ML-adversary success %.4f\n",
		r.Candidates, r.Released, r.SuccessReleased, r.BoundReleased,
		r.Rejected, r.SuccessRejected)
}

// RunSeedInference generates `candidates` synthetics with the given ω
// variant, runs the (deterministic) privacy test on each, and plays the
// maximum-likelihood seed-identification game against both groups. The
// adversary computes Pr{y = M(d)} for every record d of the seed dataset
// and guesses uniformly among the maximizers; its expected success on a
// candidate is [seed ∈ argmax] / |argmax|. ctx is honoured between
// candidates.
func RunSeedInference(ctx context.Context, p *Pipeline, om OmegaSpec, candidates int) (*AttackResult, error) {
	if candidates <= 0 {
		candidates = 300
	}
	syn, err := core.NewSeedSynthesizer(p.Model, om.Lo, om.Hi)
	if err != nil {
		return nil, err
	}
	cfg := core.TestConfig{
		K:     p.Cfg.K,
		Gamma: p.Cfg.Gamma,
		// No early exits: the adversary sees everything, so the defender's
		// accounting should too.
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(p.Cfg.Seed + 0xa77ac)
	res := &AttackResult{Candidates: candidates, BoundReleased: 1 / float64(p.Cfg.K)}

	var sumReleased, sumRejected float64
	for i := 0; i < candidates; i++ {
		if i%32 == 0 {
			if err := checkCtx(ctx); err != nil {
				return nil, err
			}
		}
		seedIdx := r.Intn(p.DS.Len())
		seed := p.DS.Row(seedIdx)
		y := syn.Generate(seed, r)

		test, err := core.RunTest(syn, p.DS, seed, y, cfg, r)
		if err != nil {
			return nil, err
		}

		// Maximum-likelihood adversary.
		prob := syn.Prober(y)
		best := -1.0
		bestCount := 0
		seedInBest := false
		for j := 0; j < p.DS.Len(); j++ {
			q := prob(p.DS.Row(j))
			switch {
			case q > best:
				best, bestCount = q, 1
				seedInBest = j == seedIdx
			case q == best:
				bestCount++
				if j == seedIdx {
					seedInBest = true
				}
			}
		}
		success := 0.0
		if seedInBest && bestCount > 0 {
			success = 1 / float64(bestCount)
		}
		if test.Pass {
			res.Released++
			sumReleased += success
		} else {
			res.Rejected++
			sumRejected += success
		}
	}
	if res.Released > 0 {
		res.SuccessReleased = sumReleased / float64(res.Released)
	}
	if res.Rejected > 0 {
		res.SuccessRejected = sumRejected / float64(res.Rejected)
	}
	return res, nil
}
