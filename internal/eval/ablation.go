package eval

import (
	"context"
	"fmt"

	"repro/internal/bayesnet"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/stats"
)

// This file holds ablation drivers for the design choices DESIGN.md calls
// out: the σ-order selection, the maxcost complexity cap (eq. 6), and the
// parameter mode (MAP vs posterior sampling). Each returns a small table
// that cmd/experiments and the ablation benchmarks render.

// SigmaOrderAblation compares the pass rate of the privacy test under the
// cardinality-preferring re-sampling order (this implementation's choice)
// against a plain index-ordered σ. Both are valid topological orders per
// §3.2; the ablation quantifies why the choice matters: high-cardinality
// attributes early in σ starve the plausible-seed count.
type SigmaOrderAblation struct {
	Omega                OmegaSpec
	K                    int
	PassRateCardinality  float64
	PassRateIndexOrdered float64
}

// Render formats the ablation.
func (a *SigmaOrderAblation) Render() string {
	return fmt.Sprintf(
		"Ablation: sigma order (%s, k=%d, gamma=2)\n"+
			"cardinality-preferring order: pass rate %.1f%%\n"+
			"index-ordered sigma:          pass rate %.1f%%\n",
		a.Omega.Name(), a.K, 100*a.PassRateCardinality, 100*a.PassRateIndexOrdered)
}

// RunSigmaOrderAblation measures both pass rates on the pipeline's model.
// ctx is honoured inside the generation loops.
func RunSigmaOrderAblation(ctx context.Context, p *Pipeline, om OmegaSpec, k, candidates int) (*SigmaOrderAblation, error) {
	if candidates <= 0 {
		candidates = 300
	}
	rate := func(st *bayesnet.Structure) (float64, error) {
		model, err := bayesnet.LearnModel(p.DP, p.Bkt, st, bayesnet.ModelConfig{Alpha: 1})
		if err != nil {
			return 0, err
		}
		syn, err := core.NewSeedSynthesizer(model, om.Lo, om.Hi)
		if err != nil {
			return 0, err
		}
		mech, err := core.NewMechanism(syn, p.DS, core.TestConfig{
			K: k, Gamma: 2, MaxPlausible: k, MaxCheckPlausible: p.Cfg.MaxCheckPlausible,
		})
		if err != nil {
			return 0, err
		}
		_, stats, err := core.GenerateCtx(ctx, mech, core.GenConfig{
			Candidates: candidates, Workers: p.Cfg.Workers, Seed: p.Cfg.Seed + 0xab1,
		})
		if err != nil {
			return 0, err
		}
		return stats.PassRate(), nil
	}

	cardRate, err := rate(p.Structure)
	if err != nil {
		return nil, err
	}
	// Same graph, index-preferring topological order.
	idxOrder, err := p.Structure.Graph.TopologicalOrderPreferring(nil)
	if err != nil {
		return nil, err
	}
	idxStruct := &bayesnet.Structure{
		Graph:  p.Structure.Graph,
		Order:  idxOrder,
		Scores: p.Structure.Scores,
	}
	idxRate, err := rate(idxStruct)
	if err != nil {
		return nil, err
	}
	return &SigmaOrderAblation{
		Omega:                om,
		K:                    k,
		PassRateCardinality:  cardRate,
		PassRateIndexOrdered: idxRate,
	}, nil
}

// MaxCostAblation sweeps the eq. (6) complexity cap and reports model
// quality (mean strong-pair TVD of direct model samples against reals) at
// each setting, with and without the ε=1 DP noise. It exhibits the
// bias/variance trade-off eq. (6) exists to control: high caps overfit the
// (noisy) conditionals, low caps underfit the dependence structure.
type MaxCostAblation struct {
	MaxCosts []float64
	// PairTVDPlain[i] / PairTVDDP[i] is the mean pairwise TVD of 5000
	// model samples vs held-out reals at MaxCosts[i].
	PairTVDPlain []float64
	PairTVDDP    []float64
}

// Render formats the ablation.
func (a *MaxCostAblation) Render() string {
	rows := make([][]string, len(a.MaxCosts))
	for i := range a.MaxCosts {
		rows[i] = []string{
			fmt.Sprintf("%.0f", a.MaxCosts[i]),
			fmt.Sprintf("%.4f", a.PairTVDPlain[i]),
			fmt.Sprintf("%.4f", a.PairTVDDP[i]),
		}
	}
	return "Ablation: maxcost (eq. 6) vs mean pairwise TVD of model samples\n" +
		RenderTable([]string{"maxcost", "un-noised", "eps=1"}, rows)
}

// RunMaxCostAblation learns a structure+model per cap and measures sample
// fidelity. ctx is honoured between cap settings.
func RunMaxCostAblation(ctx context.Context, p *Pipeline, maxCosts []float64, samples int) (*MaxCostAblation, error) {
	if len(maxCosts) == 0 {
		maxCosts = []float64{4, 32, 256, 2048}
	}
	if samples <= 0 {
		samples = 5000
	}
	res := &MaxCostAblation{MaxCosts: maxCosts}
	for _, mc := range maxCosts {
		for _, dp := range []bool{false, true} {
			if err := checkCtx(ctx); err != nil {
				return nil, err
			}
			scfg := bayesnet.StructureConfig{MaxCost: mc, MinCorr: 0.01}
			mcfg := bayesnet.ModelConfig{Alpha: 1, NoiseKey: fmt.Sprintf("ablate-%v-%v", mc, dp)}
			if dp {
				scfg.DP, scfg.EpsH, scfg.EpsN = true, p.Budgets.EpsH, p.Budgets.EpsN
				scfg.Rng = rng.NewHashed("ablate-structure", fmt.Sprint(mc))
				mcfg.DP, mcfg.EpsP = true, p.Budgets.EpsP
			}
			st, err := bayesnet.LearnStructure(p.DT, p.Bkt, scfg)
			if err != nil {
				return nil, err
			}
			model, err := bayesnet.LearnModel(p.DP, p.Bkt, st, mcfg)
			if err != nil {
				return nil, err
			}
			r := rng.New(p.Cfg.Seed + 0xab2)
			ds := dataset.New(p.Meta)
			for i := 0; i < samples; i++ {
				ds.Append(model.SampleRecord(r))
			}
			mean := stats.Mean(pairDistances(p.Test.Head(samples*2), ds))
			if dp {
				res.PairTVDDP = append(res.PairTVDDP, mean)
			} else {
				res.PairTVDPlain = append(res.PairTVDPlain, mean)
			}
		}
	}
	return res, nil
}

// ParamModeAblation compares MAP parameter estimates (eq. 13) against
// posterior-sampled parameters (eq. 12) — the paper samples "to increase
// the variety of data samples" — on sample fidelity and on the number of
// distinct records generated.
type ParamModeAblation struct {
	PairTVDMAP, PairTVDSampled       float64
	UniqueFracMAP, UniqueFracSampled float64
}

// Render formats the ablation.
func (a *ParamModeAblation) Render() string {
	return fmt.Sprintf(
		"Ablation: parameter mode (eq. 13 MAP vs eq. 12 posterior sample)\n"+
			"MAP estimate:      mean pair TVD %.4f, unique fraction %.3f\n"+
			"posterior sample:  mean pair TVD %.4f, unique fraction %.3f\n",
		a.PairTVDMAP, a.UniqueFracMAP, a.PairTVDSampled, a.UniqueFracSampled)
}

// RunParamModeAblation learns both model variants over the pipeline's
// structure and samples each. ctx is honoured between variants.
func RunParamModeAblation(ctx context.Context, p *Pipeline, samples int) (*ParamModeAblation, error) {
	if samples <= 0 {
		samples = 5000
	}
	res := &ParamModeAblation{}
	for _, mode := range []bayesnet.ParamMode{bayesnet.MAPEstimate, bayesnet.PosteriorSample} {
		if err := checkCtx(ctx); err != nil {
			return nil, err
		}
		model, err := bayesnet.LearnModel(p.DP, p.Bkt, p.Structure, bayesnet.ModelConfig{
			Alpha: 1, Mode: mode, NoiseKey: fmt.Sprintf("ablate-mode-%d", mode),
		})
		if err != nil {
			return nil, err
		}
		r := rng.New(p.Cfg.Seed + 0xab3)
		ds := dataset.New(p.Meta)
		for i := 0; i < samples; i++ {
			ds.Append(model.SampleRecord(r))
		}
		tvd := stats.Mean(pairDistances(p.Test.Head(samples*2), ds))
		uniq := float64(ds.UniqueCount()) / float64(ds.Len())
		if mode == bayesnet.MAPEstimate {
			res.PairTVDMAP, res.UniqueFracMAP = tvd, uniq
		} else {
			res.PairTVDSampled, res.UniqueFracSampled = tvd, uniq
		}
	}
	return res, nil
}
