package eval

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/acs"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/rng"
)

// RunTable2 reproduces the extraction/cleaning statistics of Table 2 by
// exporting a dirty raw file from the simulator and running the §4
// cleaning pipeline on it.
func RunTable2(ctx context.Context, n int, seed uint64) (dataset.CleanStats, error) {
	if err := checkCtx(ctx); err != nil {
		return dataset.CleanStats{}, err
	}
	pop := acs.NewPopulation()
	var buf bytes.Buffer
	if err := acs.WriteDirtyCSV(&buf, pop, rng.New(seed), n, acs.DefaultDirtyConfig()); err != nil {
		return dataset.CleanStats{}, err
	}
	_, stats, err := dataset.ReadCSV(&buf, pop.Meta())
	return stats, err
}

// Table3Row is one row of Table 3: a training dataset and the accuracy and
// agreement rate of the three tree-family classifiers trained on it.
type Table3Row struct {
	Name                   string
	AccTree, AccRF, AccAda float64
	AgrTree, AgrRF, AgrAda float64
}

// Table3Result holds all rows plus the majority baseline for reference.
type Table3Result struct {
	Rows     []Table3Row
	Baseline float64
}

// RunTable3 reproduces Table 3: Tree/RF/AdaBoostM1 trained on reals,
// marginals and each synthetic variant; accuracy on held-out reals and
// agreement with the reals-trained classifier of the same family, averaged
// over `reps` runs with fresh train/test resamples (the paper averages 5).
// ctx is honoured between training sets.
func RunTable3(ctx context.Context, p *Pipeline, reps int) (*Table3Result, error) {
	if reps < 1 {
		reps = 1
	}
	target := p.Meta.AttrIndex("WAGP")
	r := rng.New(p.Cfg.Seed + 0x7a3)

	type trainSet struct {
		name string
		data *dataset.Dataset
	}
	sets := []trainSet{{"Reals", nil}, {"Marginals", p.Marginals}}
	for _, om := range p.Cfg.Omegas {
		sets = append(sets, trainSet{om.Name(), p.Synths[om.Name()]})
	}

	sums := make([]Table3Row, len(sets))
	for i := range sums {
		sums[i].Name = sets[i].name
	}
	baselineSum := 0.0

	for rep := 0; rep < reps; rep++ {
		// Fresh real train sample and disjoint test sample per run.
		shuffled := p.Test.Shuffled(r.Split())
		nTest := shuffled.Len() * 3 / 10
		testDS := shuffled.Head(nTest)
		testProb, err := ml.FromDataset(testDS, target)
		if err != nil {
			return nil, err
		}
		realTrain := p.DS.Shuffled(r.Split())

		trainOn := func(ds *dataset.Dataset) (tree, forest, ada ml.Classifier, err error) {
			prob, err := ml.FromDataset(ds, target)
			if err != nil {
				return nil, nil, nil, err
			}
			t, err := ml.TrainTree(prob, nil, ml.TreeConfig{MaxDepth: 12, MinLeafWeight: 4})
			if err != nil {
				return nil, nil, nil, err
			}
			f, err := ml.TrainForest(prob, ml.ForestConfig{
				Trees: 30, MaxDepth: 16, Seed: r.Uint64(),
			})
			if err != nil {
				return nil, nil, nil, err
			}
			a, err := ml.TrainAdaBoost(prob, ml.AdaBoostConfig{Rounds: 30, WeakDepth: 3})
			if err != nil {
				return nil, nil, nil, err
			}
			return t, f, a, nil
		}

		refTree, refRF, refAda, err := trainOn(realTrain)
		if err != nil {
			return nil, err
		}
		baselineProb, err := ml.FromDataset(realTrain, target)
		if err != nil {
			return nil, err
		}
		baselineSum += ml.Accuracy(ml.ConstantClassifier(baselineProb.MajorityClass()), testProb)

		for si, set := range sets {
			if err := checkCtx(ctx); err != nil {
				return nil, err
			}
			var tree, forest, ada ml.Classifier
			if set.name == "Reals" {
				tree, forest, ada = refTree, refRF, refAda
			} else {
				tree, forest, ada, err = trainOn(set.data)
				if err != nil {
					return nil, fmt.Errorf("eval: table 3 %s: %w", set.name, err)
				}
			}
			sums[si].AccTree += ml.Accuracy(tree, testProb)
			sums[si].AccRF += ml.Accuracy(forest, testProb)
			sums[si].AccAda += ml.Accuracy(ada, testProb)
			sums[si].AgrTree += ml.AgreementRate(tree, refTree, testProb.Records)
			sums[si].AgrRF += ml.AgreementRate(forest, refRF, testProb.Records)
			sums[si].AgrAda += ml.AgreementRate(ada, refAda, testProb.Records)
		}
	}

	res := &Table3Result{Baseline: baselineSum / float64(reps)}
	for _, row := range sums {
		row.AccTree /= float64(reps)
		row.AccRF /= float64(reps)
		row.AccAda /= float64(reps)
		row.AgrTree /= float64(reps)
		row.AgrRF /= float64(reps)
		row.AgrAda /= float64(reps)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table4Row is one row of Table 4: a training regime and the LR and SVM
// accuracies it yields.
type Table4Row struct {
	Name          string
	AccLR, AccSVM float64
}

// Table4Result holds all rows plus the λ that was selected.
type Table4Result struct {
	Rows   []Table4Row
	Lambda float64
}

// RunTable4 reproduces Table 4: non-private, output-perturbation-DP and
// objective-perturbation-DP LR/SVM trained on reals, versus non-private
// LR/SVM trained on marginals and synthetics. ε = 1 (matching the
// generative model's budget) and λ is swept over {1e-3 … 1e-6}, picking the
// value that maximizes the non-private accuracy, exactly as in §6.3.
// ctx is honoured between training regimes.
func RunTable4(ctx context.Context, p *Pipeline, lambdas []float64) (*Table4Result, error) {
	if len(lambdas) == 0 {
		lambdas = []float64{1e-3, 1e-4, 1e-5, 1e-6}
	}
	target := p.Meta.AttrIndex("WAGP")
	const eps = 1.0
	r := rng.New(p.Cfg.Seed + 0x7a4)

	realProb, err := ml.FromDataset(p.DS, target)
	if err != nil {
		return nil, err
	}
	testProb, err := ml.FromDataset(p.Test, target)
	if err != nil {
		return nil, err
	}

	// λ selection on the non-private models.
	bestLambda, bestScore := lambdas[0], -1.0
	for _, l := range lambdas {
		if err := checkCtx(ctx); err != nil {
			return nil, err
		}
		lr, err := ml.TrainLinear(realProb, ml.ERMConfig{Loss: ml.LogisticLoss, Lambda: l})
		if err != nil {
			return nil, err
		}
		svm, err := ml.TrainLinear(realProb, ml.ERMConfig{Loss: ml.HuberHingeLoss, Lambda: l})
		if err != nil {
			return nil, err
		}
		score := ml.Accuracy(lr, testProb) + ml.Accuracy(svm, testProb)
		if score > bestScore {
			bestScore, bestLambda = score, l
		}
	}
	lrCfg := ml.ERMConfig{Loss: ml.LogisticLoss, Lambda: bestLambda}
	svmCfg := ml.ERMConfig{Loss: ml.HuberHingeLoss, Lambda: bestLambda}

	res := &Table4Result{Lambda: bestLambda}
	addRow := func(name string, lr, svm ml.Classifier) {
		res.Rows = append(res.Rows, Table4Row{
			Name:   name,
			AccLR:  ml.Accuracy(lr, testProb),
			AccSVM: ml.Accuracy(svm, testProb),
		})
	}

	lrNP, err := ml.TrainLinear(realProb, lrCfg)
	if err != nil {
		return nil, err
	}
	svmNP, err := ml.TrainLinear(realProb, svmCfg)
	if err != nil {
		return nil, err
	}
	addRow("Non Private", lrNP, svmNP)

	lrOut, err := ml.TrainOutputPerturbed(realProb, lrCfg, eps, r.Split())
	if err != nil {
		return nil, err
	}
	svmOut, err := ml.TrainOutputPerturbed(realProb, svmCfg, eps, r.Split())
	if err != nil {
		return nil, err
	}
	addRow("Output Perturbation", lrOut, svmOut)

	lrObj, err := ml.TrainObjectivePerturbed(realProb, lrCfg, eps, r.Split())
	if err != nil {
		return nil, err
	}
	svmObj, err := ml.TrainObjectivePerturbed(realProb, svmCfg, eps, r.Split())
	if err != nil {
		return nil, err
	}
	addRow("Objective Perturbation", lrObj, svmObj)

	synthRow := func(name string, ds *dataset.Dataset) error {
		if err := checkCtx(ctx); err != nil {
			return err
		}
		prob, err := ml.FromDataset(ds, target)
		if err != nil {
			return err
		}
		lr, err := ml.TrainLinear(prob, lrCfg)
		if err != nil {
			return err
		}
		svm, err := ml.TrainLinear(prob, svmCfg)
		if err != nil {
			return err
		}
		addRow(name, lr, svm)
		return nil
	}
	if err := synthRow("Marginals", p.Marginals); err != nil {
		return nil, err
	}
	for _, om := range p.Cfg.Omegas {
		if err := synthRow(om.Name(), p.Synths[om.Name()]); err != nil {
			return nil, fmt.Errorf("eval: table 4 %s: %w", om.Name(), err)
		}
	}
	return res, nil
}

// Table5Row is one row of Table 5: the distinguishing accuracy of RF and
// Tree between reals and the named dataset.
type Table5Row struct {
	Name           string
	AccRF, AccTree float64
}

// Table5Result holds the distinguishing-game outcomes.
type Table5Result struct {
	Rows []Table5Row
}

// RunTable5 reproduces the distinguishing game of §6.4: a classifier is
// trained on a balanced mix of real and synthetic records (labels: real=0,
// synthetic=1) and evaluated on a disjoint balanced mix; its accuracy is
// the distinguishing power. The "Reals" row plays reals against other
// reals, pinning the 50% blind baseline. ctx is honoured between games.
// Non-positive sizes select the full-report workload (5000/2500), clamped
// below to what the test split can feed.
func RunTable5(ctx context.Context, p *Pipeline, nTrain, nTest int) (*Table5Result, error) {
	if nTrain <= 0 {
		nTrain = 5000
	}
	if nTest <= 0 {
		nTest = 2500
	}
	r := rng.New(p.Cfg.Seed + 0x7a5)

	reals := p.Test.Shuffled(r.Split())
	need := 2*nTrain + 2*nTest // train+test real halves for the Reals row
	if reals.Len() < need {
		nTrain = reals.Len() / 4
		nTest = reals.Len() / 4
	}

	res := &Table5Result{}
	game := func(name string, synthetic *dataset.Dataset) error {
		if err := checkCtx(ctx); err != nil {
			return err
		}
		// Real records: first nTrain train, next nTest test.
		// Synthetic records: same split from the synthetic dataset.
		synth := synthetic.Shuffled(r.Split())
		if synth.Len() < nTrain+nTest {
			return fmt.Errorf("eval: table 5 %s: %d records < %d needed", name, synth.Len(), nTrain+nTest)
		}
		var trainRecs, testRecs []dataset.Record
		var trainLabels, testLabels []int
		for i := 0; i < nTrain; i++ {
			trainRecs = append(trainRecs, reals.Row(i))
			trainLabels = append(trainLabels, 0)
			trainRecs = append(trainRecs, synth.Row(i))
			trainLabels = append(trainLabels, 1)
		}
		for i := 0; i < nTest; i++ {
			testRecs = append(testRecs, reals.Row(nTrain+i))
			testLabels = append(testLabels, 0)
			testRecs = append(testRecs, synth.Row(nTrain+i))
			testLabels = append(testLabels, 1)
		}
		trainProb, err := ml.FromLabeled(p.Meta, trainRecs, trainLabels, 2)
		if err != nil {
			return err
		}
		testProb, err := ml.FromLabeled(p.Meta, testRecs, testLabels, 2)
		if err != nil {
			return err
		}
		forest, err := ml.TrainForest(trainProb, ml.ForestConfig{
			Trees: 30, MaxDepth: 18, Seed: r.Uint64(),
		})
		if err != nil {
			return err
		}
		tree, err := ml.TrainTree(trainProb, nil, ml.TreeConfig{MaxDepth: 14, MinLeafWeight: 4})
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, Table5Row{
			Name:    name,
			AccRF:   ml.Accuracy(forest, testProb),
			AccTree: ml.Accuracy(tree, testProb),
		})
		return nil
	}

	// Baseline: reals vs (other) reals ≈ 50%.
	otherReals, err := p.Test.Shuffled(r.Split()).Split(nTrain + nTest)
	if err != nil {
		return nil, err
	}
	if err := game("Reals", otherReals[0]); err != nil {
		return nil, err
	}
	if err := game("Marginals", p.Marginals); err != nil {
		return nil, err
	}
	for _, om := range p.Cfg.Omegas {
		if err := game(om.Name(), p.Synths[om.Name()]); err != nil {
			return nil, err
		}
	}
	return res, nil
}
