// Package eval reproduces the evaluation of §6 of the paper: every figure
// (1–6) and table (2–5) has a driver here that runs the full pipeline —
// simulate ACS-like data, learn a DP generative model, synthesize with the
// plausible deniability mechanism, and measure utility — and renders the
// same rows/series the paper reports. Workload sizes are configurable so
// the same drivers power both the quick benchmarks and full-scale runs of
// cmd/experiments.
package eval

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/acs"
	"repro/internal/backend"
	"repro/internal/backend/bayes"
	"repro/internal/bayesnet"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// ProgressFunc receives coarse progress reports from the long-running
// drivers: a human-readable stage name and an overall completion fraction
// in [0, 1]. Fractions are non-decreasing within one run. A nil ProgressFunc
// is always allowed.
type ProgressFunc func(stage string, frac float64)

// report invokes p when non-nil.
func (p ProgressFunc) report(stage string, frac float64) {
	if p != nil {
		p(stage, frac)
	}
}

// checkCtx returns ctx's error if it has been cancelled. The drivers call
// it at loop boundaries so a gone caller (an aborted HTTP request, a SIGINT)
// stops the run at the next cheap opportunity instead of running §6 to
// completion for nobody.
func checkCtx(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// OmegaSpec names one ω setting of §6: fixed (Lo == Hi) or uniform random
// in [Lo, Hi]. The JSON form is the wire shape of the /v1/eval endpoint.
type OmegaSpec struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Name renders the spec the way the paper labels its table columns.
func (o OmegaSpec) Name() string {
	if o.Lo == o.Hi {
		return fmt.Sprintf("omega=%d", o.Lo)
	}
	return fmt.Sprintf("omega in [%d-%d]", o.Lo, o.Hi)
}

// DefaultOmegas is the variant list used throughout §6:
// ω = 11, 10, 9, ω ∈R [9–11], ω ∈R [5–11].
func DefaultOmegas() []OmegaSpec {
	return []OmegaSpec{{11, 11}, {10, 10}, {9, 9}, {9, 11}, {5, 11}}
}

// Config scales and parameterizes the evaluation pipeline.
type Config struct {
	// N is the number of clean simulated records (the paper uses ~1.5M;
	// benches use 10–60k). Split 20/20/40/20% into DT/DP/DS/test.
	N int
	// Seed drives all randomness.
	Seed uint64
	// ModelEps is the DP budget of the generative model (paper: ε = 1).
	ModelEps float64
	// ModelDelta is the DP δ of the model (paper: ≤ 2^-30).
	ModelDelta float64
	// K, Gamma, Eps0 are the privacy-test parameters (paper defaults:
	// k = 50, γ = 4, ε0 = 1; §6.1).
	K     int
	Gamma float64
	Eps0  float64
	// Omegas lists the synthesizer variants to produce.
	Omegas []OmegaSpec
	// SynthPerVariant is the number of released records wanted per variant.
	SynthPerVariant int
	// MaxPlausible / MaxCheckPlausible are the §5 early-exit knobs.
	MaxPlausible      int
	MaxCheckPlausible int
	// MaxCost caps parent-set complexity (eq. 6). Zero means 128. The cap
	// interacts with the DP noise: parameter learning adds Laplace noise of
	// scale 1/εp (≈ 22 at a total model budget of ε = 1 over 11
	// attributes) to every per-configuration count, so the records-per-
	// configuration ratio |DP|/maxcost must stay well above that scale for
	// the conditionals to carry signal.
	MaxCost float64
	// Workers bounds generation parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultConfig returns the §6.1 parameters at the given scale.
func DefaultConfig(n int, seed uint64) Config {
	return Config{
		N:                 n,
		Seed:              seed,
		ModelEps:          1,
		ModelDelta:        math.Pow(2, -30),
		K:                 50,
		Gamma:             4,
		Eps0:              1,
		Omegas:            DefaultOmegas(),
		SynthPerVariant:   n / 10,
		MaxPlausible:      100,
		MaxCheckPlausible: 50000,
		MaxCost:           128,
	}
}

// Pipeline holds everything the experiment drivers share: the simulated
// input data and its splits, the DP structure and models, and the released
// synthetic datasets per ω variant.
type Pipeline struct {
	Cfg  Config
	Meta *dataset.Metadata
	Bkt  *dataset.Bucketizer

	// DT/DP/DS are the §3 splits (structure, parameters, seeds); Test is
	// held out for evaluation.
	DT, DP, DS, Test *dataset.Dataset

	Budgets   privacy.ModelNoiseBudgets
	Structure *bayesnet.Structure
	Model     *bayesnet.Model
	// Gen wraps Model behind the pluggable backend interface; the ω-variant
	// mechanisms are built through it, so the evaluation exercises the same
	// seam the serving layer does.
	Gen backend.Model
	// MarginalModel is the privacy-preserving marginals baseline.
	MarginalModel *bayesnet.Model

	// Synths maps each ω variant name to its released synthetic dataset.
	Synths map[string]*dataset.Dataset
	// SynthStats maps each variant to its generation statistics.
	SynthStats map[string]core.GenStats
	// Marginals is a dataset sampled from MarginalModel (always passes the
	// privacy test; §8).
	Marginals *dataset.Dataset

	// ModelLearnTime and SynthTime record the Fig. 5 timings.
	ModelLearnTime time.Duration
	SynthTime      time.Duration
}

// BuildPipeline simulates the data, learns the DP model and generates the
// synthetic datasets for every configured ω variant.
func BuildPipeline(cfg Config) (*Pipeline, error) {
	return BuildPipelineCtx(context.Background(), cfg, nil)
}

// BuildPipelineCtx is BuildPipeline with cancellation and progress: ctx is
// honoured between phases and inside the synthesis loops, and progress (may
// be nil) receives the phase name plus a completion fraction in [0, 1].
func BuildPipelineCtx(ctx context.Context, cfg Config, progress ProgressFunc) (*Pipeline, error) {
	if cfg.N < 100 {
		return nil, fmt.Errorf("eval: need at least 100 records, got %d", cfg.N)
	}
	if len(cfg.Omegas) == 0 {
		cfg.Omegas = DefaultOmegas()
	}
	if cfg.MaxCost <= 0 {
		cfg.MaxCost = 128
	}
	r := rng.New(cfg.Seed)

	progress.report("simulate", 0)
	p := &Pipeline{Cfg: cfg}
	pop := acs.NewPopulation()
	p.Meta = pop.Meta()
	var err error
	if p.Bkt, err = acs.Bucketizer(p.Meta); err != nil {
		return nil, err
	}
	clean := pop.Generate(r.Split(), cfg.N)

	parts, err := clean.SplitFrac(r.Split(), 0.2, 0.2, 0.4, 0.2)
	if err != nil {
		return nil, err
	}
	p.DT, p.DP, p.DS, p.Test = parts[0], parts[1], parts[2], parts[3]

	m := len(p.Meta.Attrs)
	if p.Budgets, err = privacy.CalibrateModel(m, cfg.ModelEps, cfg.ModelDelta); err != nil {
		return nil, err
	}
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}

	progress.report("learn model", 0.1)
	learnStart := time.Now()
	p.Structure, err = bayesnet.LearnStructure(p.DT, p.Bkt, bayesnet.StructureConfig{
		MaxCost: cfg.MaxCost,
		MinCorr: 0.01,
		DP:      true,
		EpsH:    p.Budgets.EpsH,
		EpsN:    p.Budgets.EpsN,
		Rng:     r.Split(),
	})
	if err != nil {
		return nil, err
	}
	p.Model, err = bayesnet.LearnModel(p.DP, p.Bkt, p.Structure, bayesnet.ModelConfig{
		Alpha:    1,
		Mode:     bayesnet.MAPEstimate,
		DP:       true,
		EpsP:     p.Budgets.EpsP,
		NoiseKey: fmt.Sprintf("model-%d", cfg.Seed),
	})
	if err != nil {
		return nil, err
	}
	p.MarginalModel, err = bayesnet.LearnModel(p.DP, p.Bkt, bayesnet.MarginalStructure(p.Meta), bayesnet.ModelConfig{
		Alpha:    1,
		Mode:     bayesnet.MAPEstimate,
		DP:       true,
		EpsP:     p.Budgets.EpsP,
		NoiseKey: fmt.Sprintf("marginal-%d", cfg.Seed),
	})
	if err != nil {
		return nil, err
	}
	// Freeze both models' sampling tables: every ω variant and the marginals
	// baseline below synthesize against them, so the whole evaluation runs on
	// the lock-free frozen path.
	if err := p.Model.Freeze(0); err != nil {
		return nil, err
	}
	if err := p.MarginalModel.Freeze(0); err != nil {
		return nil, err
	}
	p.Gen = bayes.New(p.Model, p.Structure)
	p.ModelLearnTime = time.Since(learnStart)
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}

	// Synthesize each ω variant. The fractions allot [0.3, 0.95] to the
	// synthesis loop, split evenly across variants.
	synthStart := time.Now()
	p.Synths = make(map[string]*dataset.Dataset, len(cfg.Omegas))
	p.SynthStats = make(map[string]core.GenStats, len(cfg.Omegas))
	for vi, om := range cfg.Omegas {
		progress.report("synthesize "+om.Name(), 0.3+0.65*float64(vi)/float64(len(cfg.Omegas)))
		ds, stats, err := p.GenerateVariantCtx(ctx, om, cfg.SynthPerVariant)
		if err != nil {
			return nil, fmt.Errorf("eval: variant %s: %w", om.Name(), err)
		}
		p.Synths[om.Name()] = ds
		p.SynthStats[om.Name()] = stats
	}
	p.SynthTime = time.Since(synthStart)

	// Marginals baseline dataset of the same size.
	progress.report("marginals baseline", 0.95)
	mr := rng.New(cfg.Seed + 0x9e37)
	marg := dataset.New(p.Meta)
	for i := 0; i < cfg.SynthPerVariant; i++ {
		if i%4096 == 0 {
			if err := checkCtx(ctx); err != nil {
				return nil, err
			}
		}
		marg.Append(p.MarginalModel.SampleRecord(mr))
	}
	p.Marginals = marg
	progress.report("pipeline ready", 1)
	return p, nil
}

// Mechanism builds the plausible deniability mechanism for one ω variant,
// going through the backend seam (identical synthesis to constructing the
// seed synthesizer directly).
func (p *Pipeline) Mechanism(om OmegaSpec) (*core.Mechanism, error) {
	syn, err := p.Gen.Synthesizer(om.Lo, om.Hi)
	if err != nil {
		return nil, err
	}
	return core.NewMechanism(syn, p.DS, core.TestConfig{
		K:                 p.Cfg.K,
		Gamma:             p.Cfg.Gamma,
		Randomized:        true,
		Eps0:              p.Cfg.Eps0,
		MaxPlausible:      p.Cfg.MaxPlausible,
		MaxCheckPlausible: p.Cfg.MaxCheckPlausible,
	})
}

// GenerateVariant produces `count` released records for one ω variant.
func (p *Pipeline) GenerateVariant(om OmegaSpec, count int) (*dataset.Dataset, core.GenStats, error) {
	return p.GenerateVariantCtx(context.Background(), om, count)
}

// GenerateVariantCtx is GenerateVariant with cancellation: workers stop at
// the next candidate boundary when ctx is cancelled.
func (p *Pipeline) GenerateVariantCtx(ctx context.Context, om OmegaSpec, count int) (*dataset.Dataset, core.GenStats, error) {
	mech, err := p.Mechanism(om)
	if err != nil {
		return nil, core.GenStats{}, err
	}
	seed := p.Cfg.Seed ^ uint64(om.Lo)<<32 ^ uint64(om.Hi)<<40
	return core.GenerateTargetCtx(ctx, mech, count, 200*count, p.Cfg.Workers, seed)
}
