package eval

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
)

// PerfResult holds the Figure 5 timings: cumulative wall-clock time to
// produce increasing numbers of candidate synthetics (the generator outputs
// all candidates regardless of the test outcome, §6.5), plus the one-off
// model learning time.
type PerfResult struct {
	ModelLearn time.Duration
	Counts     []int
	SynthTimes []time.Duration
	Released   []int
}

// RunFig5 measures generation throughput with the paper's Fig. 5 parameters
// (ω = 9, k = 50, γ = 4; max_plausible and max_check_plausible from the
// pipeline config) at each requested candidate count. ctx stops the
// generation loops at the next candidate boundary.
func RunFig5(ctx context.Context, p *Pipeline, counts []int) (*PerfResult, error) {
	if len(counts) == 0 {
		counts = []int{2500, 5000, 10000, 20000}
	}
	mech, err := p.Mechanism(OmegaSpec{9, 9})
	if err != nil {
		return nil, err
	}
	res := &PerfResult{ModelLearn: p.ModelLearnTime, Counts: counts}
	for ci, n := range counts {
		_, stats, err := core.GenerateCtx(ctx, mech, core.GenConfig{
			Candidates: n,
			Workers:    p.Cfg.Workers,
			Seed:       p.Cfg.Seed + uint64(ci),
		})
		if err != nil {
			return nil, err
		}
		res.SynthTimes = append(res.SynthTimes, stats.Elapsed)
		res.Released = append(res.Released, stats.Released)
	}
	return res, nil
}

// PassRateResult holds the Figure 6 series: the fraction of candidate
// synthetics passing the (deterministic) privacy test, per ω variant and
// plausible-deniability threshold k, at γ = 2.
type PassRateResult struct {
	Ks     []int
	Omegas []OmegaSpec
	// Rates[omega.Name()][i] is the pass rate at Ks[i].
	Rates map[string][]float64
}

// RunFig6 reproduces Figure 6: γ = 2, k swept, one candidate batch per
// (ω, k) combination. ctx is honoured between combinations and inside the
// generation loops.
func RunFig6(ctx context.Context, p *Pipeline, ks []int, omegas []OmegaSpec, candidates int) (*PassRateResult, error) {
	if len(ks) == 0 {
		ks = []int{10, 25, 50, 100, 150, 200, 250}
	}
	if len(omegas) == 0 {
		omegas = []OmegaSpec{{7, 7}, {8, 8}, {9, 9}, {10, 10}, {5, 11}}
	}
	if candidates <= 0 {
		candidates = 400
	}
	res := &PassRateResult{Ks: ks, Omegas: omegas, Rates: map[string][]float64{}}
	for _, om := range omegas {
		syn, err := core.NewSeedSynthesizer(p.Model, om.Lo, om.Hi)
		if err != nil {
			return nil, err
		}
		rates := make([]float64, len(ks))
		for ki, k := range ks {
			if k > p.DS.Len() {
				return nil, fmt.Errorf("eval: k=%d exceeds seed dataset size %d", k, p.DS.Len())
			}
			mech, err := core.NewMechanism(syn, p.DS, core.TestConfig{
				K:                 k,
				Gamma:             2,
				MaxPlausible:      k, // counting past k is wasted work here
				MaxCheckPlausible: p.Cfg.MaxCheckPlausible,
			})
			if err != nil {
				return nil, err
			}
			_, stats, err := core.GenerateCtx(ctx, mech, core.GenConfig{
				Candidates: candidates,
				Workers:    p.Cfg.Workers,
				Seed:       p.Cfg.Seed ^ uint64(k)<<16 ^ uint64(om.Lo)<<8 ^ uint64(om.Hi),
			})
			if err != nil {
				return nil, err
			}
			rates[ki] = stats.PassRate()
		}
		res.Rates[om.Name()] = rates
	}
	return res, nil
}
