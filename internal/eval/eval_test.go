package eval

import (
	"context"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/stats"
)

// sharedPipeline builds one small pipeline reused by all eval tests (the
// pipeline is read-only after construction).
var (
	pipeOnce sync.Once
	pipe     *Pipeline
	pipeErr  error
)

func testPipeline(t *testing.T) *Pipeline {
	t.Helper()
	pipeOnce.Do(func() {
		// The DP split must be large relative to the per-count Laplace
		// noise (scale ≈ 22 at ε=1) times maxcost, or the ε=1 model
		// degenerates; see Config.MaxCost. 60k records ≈ the smallest
		// scale at which the paper's shapes are visible.
		cfg := DefaultConfig(60000, 7)
		cfg.K = 20
		cfg.SynthPerVariant = 3000
		cfg.MaxCheckPlausible = 24000
		cfg.Omegas = []OmegaSpec{{11, 11}, {9, 9}, {5, 11}}
		cfg.MaxCost = 32
		pipe, pipeErr = BuildPipeline(cfg)
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipe
}

func TestBuildPipelineInvariants(t *testing.T) {
	p := testPipeline(t)
	if p.DT.Len()+p.DP.Len()+p.DS.Len()+p.Test.Len() != 60000 {
		t.Fatal("splits do not partition the data")
	}
	if p.Structure == nil || p.Model == nil || p.MarginalModel == nil {
		t.Fatal("pipeline missing models")
	}
	if p.Budgets.Model.Epsilon > 1.01 {
		t.Fatalf("model budget %v exceeds ε=1", p.Budgets.Model)
	}
	for name, ds := range p.Synths {
		if ds.Len() != 3000 {
			t.Fatalf("variant %s has %d records, want 3000", name, ds.Len())
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("variant %s: %v", name, err)
		}
	}
	if p.Marginals.Len() != 3000 {
		t.Fatalf("marginals dataset has %d records", p.Marginals.Len())
	}
	// Structure learned something: at least a few edges on ACS-like data.
	if p.Structure.Graph.NumEdges() < 3 {
		t.Fatalf("structure has only %d edges:\n%v", p.Structure.Graph.NumEdges(), p.Structure.Graph)
	}
}

func TestBuildPipelineRejectsTinyN(t *testing.T) {
	if _, err := BuildPipeline(DefaultConfig(50, 1)); err == nil {
		t.Fatal("N=50 accepted")
	}
}

func TestRunFig12Shapes(t *testing.T) {
	p := testPipeline(t)
	res, err := RunFig12(context.Background(), p, 1, 500)
	if err != nil {
		t.Fatal(err)
	}
	m := len(p.Meta.Attrs)
	if len(res.AccGenerative) != m || len(res.ImprovEps1) != m {
		t.Fatal("result vectors wrong length")
	}
	// The generative model must beat random guessing on average and beat
	// marginals on at least a few attributes (the Fig. 1 shape).
	better := 0
	for a := 0; a < m; a++ {
		if res.AccGenerative[a] < res.AccRandom[a]-0.05 {
			t.Errorf("attribute %s: generative %.3f below random %.3f",
				res.AttrNames[a], res.AccGenerative[a], res.AccRandom[a])
		}
		if res.AccGenerative[a] > res.AccMarginals[a]+0.02 {
			better++
		}
	}
	if better < 3 {
		t.Errorf("generative model beat marginals on only %d attributes", better)
	}
	if !strings.Contains(res.RenderFig1(), "Figure 1") || !strings.Contains(res.RenderFig2(), "RandomForest") {
		t.Fatal("render output malformed")
	}
}

func TestRunFig34Shapes(t *testing.T) {
	p := testPipeline(t)
	res, err := RunFig34(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2+len(p.Cfg.Omegas) {
		t.Fatalf("series count %d", len(res.Series))
	}
	// Reals-vs-reals is the noise floor: its median must be the smallest.
	floor := res.Pairs["Reals"].Median
	for _, s := range res.Series {
		if res.Pairs[s].Median < floor-1e-9 {
			t.Errorf("series %s has pair distance below the reals floor", s)
		}
	}
	// At this 60k scale the ε=1 DP noise dominates the model, so only
	// sanity bounds are asserted here; the paper-shape comparison against
	// marginals runs at full scale in TestPaperShapeFig4 below.
	marg := res.Pairs["Marginals"].Median
	for _, om := range p.Cfg.Omegas {
		syn := res.Pairs[om.Name()].Median
		if syn > 2*marg {
			t.Errorf("pair distance of %s (%.4f) wildly above marginals (%.4f)", om.Name(), syn, marg)
		}
		if syn > 0.5 {
			t.Errorf("pair distance of %s (%.4f) implausibly large", om.Name(), syn)
		}
	}
	if !strings.Contains(res.Render(), "Figure 3") {
		t.Fatal("render output malformed")
	}
}

// TestPaperShapeFig4 verifies the headline Fig. 4 claim — DP synthetics
// preserve pairwise joint distributions far better than marginals — at a
// scale where the ε=1 noise budget leaves signal (the paper used 280k
// records per learning split).
func TestPaperShapeFig4(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale pipeline skipped in -short mode")
	}
	p := shapePipeline(t)
	synTotal, margTotal := strongPairDistances(t, p, "omega in [5-11]")
	if synTotal > 0.7*margTotal {
		t.Errorf("strong-pair distances at scale: synthetics %.4f not clearly below marginals %.4f",
			synTotal, margTotal)
	}
	res, err := RunFig34(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	// Box shape of Fig. 4: the upper quartile and the worst pair of every
	// synthetic variant sit below the marginals' (synthetics track the
	// dependent pairs, where marginals break). The median lives among the
	// near-independent pairs, where the paper itself notes marginals can
	// win; we require parity there.
	marg := res.Pairs["Marginals"]
	for _, om := range p.Cfg.Omegas {
		syn := res.Pairs[om.Name()]
		if syn.Q3 > marg.Q3 {
			t.Errorf("pair distance q3 of %s (%.4f) above marginals (%.4f)", om.Name(), syn.Q3, marg.Q3)
		}
		if syn.Max > marg.Max {
			t.Errorf("pair distance max of %s (%.4f) above marginals (%.4f)", om.Name(), syn.Max, marg.Max)
		}
		if syn.Median > marg.Median+0.01 {
			t.Errorf("pair distance median of %s (%.4f) far above marginals (%.4f)",
				om.Name(), syn.Median, marg.Median)
		}
	}
}

var (
	shapeOnce sync.Once
	shapePipe *Pipeline
	shapeErr  error
)

// shapePipeline is the paper-scale pipeline used by the shape tests.
func shapePipeline(t *testing.T) *Pipeline {
	t.Helper()
	shapeOnce.Do(func() {
		cfg := DefaultConfig(250000, 11)
		cfg.SynthPerVariant = 20000
		cfg.Omegas = []OmegaSpec{{11, 11}, {9, 9}, {5, 11}}
		shapePipe, shapeErr = BuildPipeline(cfg)
	})
	if shapeErr != nil {
		t.Fatal(shapeErr)
	}
	return shapePipe
}

// strongPairDistances sums, over the 8 most correlated attribute pairs of
// the reference reals, the TVD of the named synthetic variant and of the
// marginals against the reference.
func strongPairDistances(t *testing.T, p *Pipeline, variant string) (synSum, margSum float64) {
	t.Helper()
	half := p.Test.Len() / 2
	sh := p.Test.Shuffled(rng.New(p.Cfg.Seed + 0x34))
	parts, err := sh.Split(half, half)
	if err != nil {
		t.Fatal(err)
	}
	ref := parts[0]
	m := ref.NumAttrs()
	type pairSU struct {
		i, j int
		su   float64
	}
	var pairs []pairSU
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			su := stats.SymmetricalUncertaintyColumns(
				ref.Column(i), ref.Meta.Attrs[i].Card(),
				ref.Column(j), ref.Meta.Attrs[j].Card())
			pairs = append(pairs, pairSU{i, j, su})
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].su > pairs[b].su })
	syn := p.Synths[variant]
	dist := func(ds *dataset.Dataset, i, j int) float64 {
		ci, cj := ref.Meta.Attrs[i].Card(), ref.Meta.Attrs[j].Card()
		ja := stats.FromColumns(ref.Column(i), ci, ref.Column(j), cj)
		jb := stats.FromColumns(ds.Column(i), ci, ds.Column(j), cj)
		return stats.TotalVariation(ja.Flatten(), jb.Flatten())
	}
	for _, pr := range pairs[:8] {
		synSum += dist(syn, pr.i, pr.j)
		margSum += dist(p.Marginals, pr.i, pr.j)
	}
	return synSum, margSum
}

func TestRunFig5Shapes(t *testing.T) {
	p := testPipeline(t)
	res, err := RunFig5(context.Background(), p, []int{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SynthTimes) != 2 || len(res.Released) != 2 {
		t.Fatal("result vectors wrong length")
	}
	if res.SynthTimes[0] <= 0 {
		t.Fatal("synthesis time not measured")
	}
	if !strings.Contains(res.Render(), "Figure 5") {
		t.Fatal("render output malformed")
	}
}

func TestRunFig6Shapes(t *testing.T) {
	p := testPipeline(t)
	ks := []int{5, 20, 60}
	res, err := RunFig6(context.Background(), p, ks, []OmegaSpec{{9, 9}, {5, 11}}, 150)
	if err != nil {
		t.Fatal(err)
	}
	for name, rates := range res.Rates {
		if len(rates) != len(ks) {
			t.Fatalf("series %s has %d rates", name, len(rates))
		}
		// Pass rate must be non-increasing in k (allowing MC slack).
		for i := 1; i < len(rates); i++ {
			if rates[i] > rates[i-1]+0.08 {
				t.Errorf("series %s: pass rate rose from %.3f to %.3f as k grew",
					name, rates[i-1], rates[i])
			}
		}
	}
	if !strings.Contains(res.Render(), "Figure 6") {
		t.Fatal("render output malformed")
	}
}

func TestRunFig6RejectsOversizedK(t *testing.T) {
	p := testPipeline(t)
	if _, err := RunFig6(context.Background(), p, []int{p.DS.Len() + 1}, []OmegaSpec{{9, 9}}, 10); err == nil {
		t.Fatal("k > |DS| accepted")
	}
}

func TestRunTable2(t *testing.T) {
	st, err := RunTable2(context.Background(), 4000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 4000 || st.Clean == 0 || st.Clean == st.Total {
		t.Fatalf("implausible cleaning stats: %+v", st)
	}
}

func TestRunTable3Shape(t *testing.T) {
	p := testPipeline(t)
	res, err := RunTable3(context.Background(), p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2+len(p.Cfg.Omegas) {
		t.Fatalf("row count %d", len(res.Rows))
	}
	if res.Rows[0].Name != "Reals" {
		t.Fatal("first row should be Reals")
	}
	// Reals-trained classifiers agree with themselves perfectly.
	if res.Rows[0].AgrRF != 1 || res.Rows[0].AgrTree != 1 {
		t.Fatalf("reals row agreement not 1: %+v", res.Rows[0])
	}
	// Ordering shape: reals ≥ synthetics ≥ marginals on RF accuracy
	// (allowing small-sample slack).
	var margRF, bestSynRF float64
	for _, row := range res.Rows {
		switch {
		case row.Name == "Marginals":
			margRF = row.AccRF
		case row.Name != "Reals" && row.AccRF > bestSynRF:
			bestSynRF = row.AccRF
		}
	}
	if bestSynRF < margRF-0.05 {
		t.Errorf("best synthetic RF %.3f clearly below marginals %.3f", bestSynRF, margRF)
	}
	if !strings.Contains(res.Render(), "Table 3") {
		t.Fatal("render output malformed")
	}
}

func TestRunTable4Shape(t *testing.T) {
	p := testPipeline(t)
	res, err := RunTable4(context.Background(), p, []float64{1e-3, 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4+len(p.Cfg.Omegas) {
		t.Fatalf("row count %d", len(res.Rows))
	}
	if res.Rows[0].Name != "Non Private" {
		t.Fatal("first row should be Non Private")
	}
	np := res.Rows[0]
	if np.AccLR < 0.6 || np.AccSVM < 0.6 {
		t.Fatalf("non-private baselines too weak: %+v", np)
	}
	if !strings.Contains(res.Render(), "Table 4") {
		t.Fatal("render output malformed")
	}
}

func TestRunTable5Shape(t *testing.T) {
	p := testPipeline(t)
	res, err := RunTable5(context.Background(), p, 200, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2+len(p.Cfg.Omegas) {
		t.Fatalf("row count %d", len(res.Rows))
	}
	var realsRF, margRF float64
	for _, row := range res.Rows {
		switch row.Name {
		case "Reals":
			realsRF = row.AccRF
		case "Marginals":
			margRF = row.AccRF
		}
	}
	// Blind baseline ~50%; marginals must be clearly distinguishable.
	if realsRF < 0.35 || realsRF > 0.65 {
		t.Errorf("reals-vs-reals distinguishing accuracy %.3f far from 50%%", realsRF)
	}
	if margRF < realsRF+0.05 {
		t.Errorf("marginals (%.3f) not more distinguishable than reals (%.3f)", margRF, realsRF)
	}
	if !strings.Contains(res.Render(), "Table 5") {
		t.Fatal("render output malformed")
	}
}

func TestRenderTableAlignment(t *testing.T) {
	out := RenderTable([]string{"A", "LongHeader"}, [][]string{{"xx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "--") {
		t.Fatal("missing separator row")
	}
}
