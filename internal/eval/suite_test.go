package eval

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// smallSuiteConfig is the fast end-to-end suite workload shared by the
// suite tests (and mirrored by the server's /v1/eval integration test).
func smallSuiteConfig() SuiteConfig {
	cfg := DefaultSuiteConfig(12000, 3)
	cfg.K = 10
	cfg.MaxCost = 32
	cfg.SynthPerVariant = 400
	cfg.MaxCheckPlausible = 6000
	cfg.Omegas = []OmegaSpec{{Lo: 5, Hi: 11}}
	cfg.Reps = 1
	cfg.Sections = []string{"table2", "fig34", "fig6", "table5", "attack"}
	cfg.Fig6Ks = []int{5, 20}
	cfg.Fig6Candidates = 120
	cfg.Table5Train = 150
	cfg.Table5Test = 80
	cfg.AttackCandidates = 120
	return cfg
}

func TestRunSuiteSelectedSections(t *testing.T) {
	var fracs []float64
	res, err := RunSuite(context.Background(), smallSuiteConfig(), func(stage string, frac float64) {
		fracs = append(fracs, frac)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Selected sections are present, unselected ones omitted.
	if res.Table2 == nil || res.Fig34 == nil || res.Fig6 == nil || res.Table5 == nil || res.Attack == nil {
		t.Fatalf("missing selected sections: %+v", res)
	}
	if res.Fig12 != nil || res.Fig5 != nil || res.Table3 != nil || res.Table4 != nil || res.Sigma != nil {
		t.Fatal("unselected sections ran")
	}
	if len(res.Pipeline.Variants) != 1 || res.Pipeline.Variants[0].Released == 0 {
		t.Fatalf("pipeline summary %+v", res.Pipeline)
	}
	// Progress is monotonically non-decreasing and reaches 1.
	for i := 1; i < len(fracs); i++ {
		if fracs[i] < fracs[i-1] {
			t.Fatalf("progress regressed: %v", fracs)
		}
	}
	if len(fracs) == 0 || fracs[len(fracs)-1] != 1 {
		t.Fatalf("progress did not reach 1: %v", fracs)
	}
	// The render carries the selected sections.
	report := res.Render()
	for _, want := range []string{"Table 2:", "Figure 3:", "Figure 6:", "Table 5:", "Seed-inference"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The result round-trips through JSON without loss of the figure/table
	// numbers (the contract the /v1/jobs/{id}/result endpoint relies on).
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back SuiteResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Fig6.Rates["omega in [5-11]"][0] != res.Fig6.Rates["omega in [5-11]"][0] {
		t.Fatal("fig6 rates did not round-trip")
	}
}

// TestRunSuiteSparseConfigGetsDefaults pins the /v1/eval contract: a
// request carrying only scale, seed and a section list runs with the
// full-report workload knobs (clamped to the scale), instead of zero-sized
// sections failing deep inside the job.
func TestRunSuiteSparseConfigGetsDefaults(t *testing.T) {
	cfg := smallSuiteConfig()
	cfg.Sections = []string{"table5"}
	cfg.Table5Train, cfg.Table5Test = 0, 0 // omitted knobs
	cfg.SynthPerVariant = 1300             // enough for the clamped default game
	res, err := RunSuite(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table5 == nil || len(res.Table5.Rows) == 0 {
		t.Fatalf("table5 did not run with default sizes: %+v", res.Table5)
	}
	if res.Config.SynthPerVariant != 1300 {
		t.Fatalf("explicit knob overridden: %+v", res.Config)
	}
}

func TestRunSuiteRejectsUnknownSection(t *testing.T) {
	cfg := smallSuiteConfig()
	cfg.Sections = []string{"fig99"}
	if _, err := RunSuite(context.Background(), cfg, nil); err == nil || !strings.Contains(err.Error(), "fig99") {
		t.Fatalf("unknown section accepted (err=%v)", err)
	}
}

func TestRunSuiteHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSuite(ctx, smallSuiteConfig(), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled suite returned %v", err)
	}
}

// TestRunSuiteWorkerCountIndependent pins the serving-layer contract: the
// same config produces identical (non-timing) results whatever the worker
// grant, so the shared pool can size jobs to the current load.
func TestRunSuiteWorkerCountIndependent(t *testing.T) {
	cfg := smallSuiteConfig()
	cfg.Sections = []string{"fig6"}
	cfg.Workers = 1
	one, err := RunSuite(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 7
	seven, err := RunSuite(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, rates := range one.Fig6.Rates {
		for i, r := range rates {
			if seven.Fig6.Rates[name][i] != r {
				t.Fatalf("fig6 series %s differs across worker counts", name)
			}
		}
	}
	if one.Pipeline.Variants[0].Released != seven.Pipeline.Variants[0].Released {
		t.Fatal("released counts differ across worker counts")
	}
}
