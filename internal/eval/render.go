package eval

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// RenderTable lays out rows under headers with aligned columns, in the
// plain-text style used by EXPERIMENTS.md and cmd/experiments.
func RenderTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

func pct(v float64) string  { return fmt.Sprintf("%.1f%%", 100*v) }
func pctS(v float64) string { return fmt.Sprintf("%+.1f%%", v) }

// Render formats the Figure 1 series.
func (r *Fig12Result) RenderFig1() string {
	rows := make([][]string, len(r.AttrNames))
	for i, name := range r.AttrNames {
		rows[i] = []string{
			name,
			pctS(r.ImprovNoNoise[i]),
			pctS(r.ImprovEps1[i]),
			pctS(r.ImprovEps01[i]),
		}
	}
	return "Figure 1: relative improvement of model accuracy over marginals\n" +
		RenderTable([]string{"Attribute", "NoNoise", "eps=1", "eps=0.1"}, rows)
}

// RenderFig2 formats the Figure 2 series.
func (r *Fig12Result) RenderFig2() string {
	rows := make([][]string, len(r.AttrNames))
	for i, name := range r.AttrNames {
		rows[i] = []string{
			name,
			pct(r.AccGenerative[i]),
			pct(r.AccRF[i]),
			pct(r.AccMarginals[i]),
			pct(r.AccRandom[i]),
		}
	}
	return "Figure 2: model accuracy per attribute\n" +
		RenderTable([]string{"Attribute", "Generative", "RandomForest", "Marginals", "Random"}, rows)
}

// Render formats the Figures 3 and 4 five-number summaries.
func (r *DistanceResult) Render() string {
	mk := func(title string, data map[string]stats.FiveNumber) string {
		rows := make([][]string, 0, len(r.Series))
		for _, s := range r.Series {
			f := data[s]
			rows = append(rows, []string{
				s,
				fmt.Sprintf("%.4f", f.Min),
				fmt.Sprintf("%.4f", f.Q1),
				fmt.Sprintf("%.4f", f.Median),
				fmt.Sprintf("%.4f", f.Q3),
				fmt.Sprintf("%.4f", f.Max),
			})
		}
		return title + "\n" + RenderTable([]string{"Series", "Min", "Q1", "Median", "Q3", "Max"}, rows)
	}
	return mk("Figure 3: statistical distance, single attributes", r.Singles) +
		"\n" + mk("Figure 4: statistical distance, attribute pairs", r.Pairs)
}

// Render formats the Figure 5 timing series.
func (r *PerfResult) Render() string {
	rows := make([][]string, len(r.Counts))
	for i, n := range r.Counts {
		rows[i] = []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2fs", r.SynthTimes[i].Seconds()),
			fmt.Sprintf("%d", r.Released[i]),
		}
	}
	return fmt.Sprintf("Figure 5: generation performance (model learning: %.2fs)\n", r.ModelLearn.Seconds()) +
		RenderTable([]string{"Candidates", "SynthesisTime", "Released"}, rows)
}

// Render formats the Figure 6 pass-rate series.
func (r *PassRateResult) Render() string {
	headers := []string{"k"}
	for _, om := range r.Omegas {
		headers = append(headers, om.Name())
	}
	rows := make([][]string, len(r.Ks))
	for ki, k := range r.Ks {
		row := []string{fmt.Sprintf("%d", k)}
		for _, om := range r.Omegas {
			row = append(row, pct(r.Rates[om.Name()][ki]))
		}
		rows[ki] = row
	}
	return "Figure 6: percentage of candidates passing the privacy test (gamma=2)\n" +
		RenderTable(headers, rows)
}

// Render formats Table 3.
func (r *Table3Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Name,
			pct(row.AccTree), pct(row.AccRF), pct(row.AccAda),
			pct(row.AgrTree), pct(row.AgrRF), pct(row.AgrAda),
		}
	}
	return fmt.Sprintf("Table 3: classifier comparison (majority baseline %.1f%%)\n", 100*r.Baseline) +
		RenderTable([]string{"TrainedOn", "AccTree", "AccRF", "AccAda", "AgrTree", "AgrRF", "AgrAda"}, rows)
}

// Render formats Table 4.
func (r *Table4Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Name, pct(row.AccLR), pct(row.AccSVM)}
	}
	return fmt.Sprintf("Table 4: privacy-preserving classifier comparison (lambda=%g, eps=1)\n", r.Lambda) +
		RenderTable([]string{"Regime", "LR", "SVM"}, rows)
}

// Render formats Table 5.
func (r *Table5Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Name, pct(row.AccRF), pct(row.AccTree)}
	}
	return "Table 5: distinguishing game (accuracy of separating synthetics from reals)\n" +
		RenderTable([]string{"Dataset", "RF", "Tree"}, rows)
}
