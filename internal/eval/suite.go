package eval

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/dataset"
)

// This file is the single entry point for a full §6 evaluation run: one
// config, one result, one renderer. cmd/experiments and the sgfd /v1/eval
// endpoint both call RunSuite, so the CLI report and the served JSON can
// never drift apart.

// SuiteSections lists the report sections RunSuite knows, in execution
// order. "pipeline" (build the §3 pipeline) always runs and may be named
// explicitly to request a pipeline-only run.
var SuiteSections = []string{
	"pipeline", "table2", "fig12", "fig34", "fig5", "fig6",
	"table3", "table4", "table5", "attack", "sigma", "maxcost", "parammode",
}

// SuiteConfig parameterizes one evaluation-suite run. The JSON form is the
// request body of POST /v1/eval; zero values select the §6.1 defaults at
// the given scale (see DefaultSuiteConfig).
type SuiteConfig struct {
	// N is the number of simulated clean records (paper: ~1.5M).
	N int `json:"n"`
	// Seed drives all randomness; together with the remaining parameters it
	// fully determines every non-timing number in the result.
	Seed uint64 `json:"seed"`
	// ModelEps / ModelDelta are the DP budget of the generative model.
	ModelEps   float64 `json:"model_eps,omitempty"`
	ModelDelta float64 `json:"model_delta,omitempty"`
	// K, Gamma, Eps0 are the privacy-test parameters (§6.1).
	K     int     `json:"k,omitempty"`
	Gamma float64 `json:"gamma,omitempty"`
	Eps0  float64 `json:"eps0,omitempty"`
	// Omegas lists the synthesizer variants (empty = DefaultOmegas).
	Omegas []OmegaSpec `json:"omegas,omitempty"`
	// SynthPerVariant is the number of released records per ω variant.
	SynthPerVariant int `json:"synth_per_variant,omitempty"`
	// MaxPlausible / MaxCheckPlausible are the §5 early-exit knobs.
	MaxPlausible      int `json:"max_plausible,omitempty"`
	MaxCheckPlausible int `json:"max_check_plausible,omitempty"`
	// MaxCost caps parent-set complexity (eq. 6).
	MaxCost float64 `json:"max_cost,omitempty"`
	// Workers bounds generation parallelism (0 = GOMAXPROCS). Results never
	// depend on it (the core determinism contract), only wall-clock does.
	Workers int `json:"workers,omitempty"`

	// Sections selects which report sections to run (empty = all).
	Sections []string `json:"sections,omitempty"`
	// Reps is the noise-repetition count for Fig. 1 and Table 3 runs.
	Reps int `json:"reps,omitempty"`
	// Fig12Probes is the number of test records probed per attribute.
	Fig12Probes int `json:"fig12_probes,omitempty"`
	// Fig5Counts lists the candidate counts timed for Fig. 5.
	Fig5Counts []int `json:"fig5_counts,omitempty"`
	// Fig6Ks / Fig6Candidates parameterize the Fig. 6 k sweep.
	Fig6Ks         []int `json:"fig6_ks,omitempty"`
	Fig6Candidates int   `json:"fig6_candidates,omitempty"`
	// Table5Train / Table5Test size the distinguishing game.
	Table5Train int `json:"table5_train,omitempty"`
	Table5Test  int `json:"table5_test,omitempty"`
	// AttackCandidates sizes the seed-inference attack.
	AttackCandidates int `json:"attack_candidates,omitempty"`
	// AblationCandidates / AblationSamples size the ablation drivers.
	AblationCandidates int `json:"ablation_candidates,omitempty"`
	AblationSamples    int `json:"ablation_samples,omitempty"`
}

// DefaultSuiteConfig returns the cmd/experiments defaults at the given
// scale: every section, with the per-section workloads the full report
// uses.
func DefaultSuiteConfig(n int, seed uint64) SuiteConfig {
	base := DefaultConfig(n, seed)
	return SuiteConfig{
		N:                  n,
		Seed:               seed,
		ModelEps:           base.ModelEps,
		ModelDelta:         base.ModelDelta,
		K:                  base.K,
		Gamma:              base.Gamma,
		Eps0:               base.Eps0,
		SynthPerVariant:    base.SynthPerVariant,
		MaxPlausible:       base.MaxPlausible,
		MaxCheckPlausible:  base.MaxCheckPlausible,
		MaxCost:            base.MaxCost,
		Reps:               3,
		Fig12Probes:        5000,
		Fig5Counts:         []int{2500, 5000, 10000, 20000},
		Fig6Candidates:     400,
		Table5Train:        5000,
		Table5Test:         2500,
		AttackCandidates:   500,
		AblationCandidates: 500,
		AblationSamples:    5000,
	}
}

// WithDefaults fills every zero-valued per-section workload knob from
// DefaultSuiteConfig, so a sparse config (a minimal /v1/eval request body)
// runs the exact full-report workloads cmd/experiments runs. RunSuite
// applies it, which is what makes CLI and server results comparable knob
// for knob.
func (c SuiteConfig) WithDefaults() SuiteConfig {
	def := DefaultSuiteConfig(c.N, c.Seed)
	if c.Reps == 0 {
		c.Reps = def.Reps
	}
	if c.Fig12Probes == 0 {
		c.Fig12Probes = def.Fig12Probes
	}
	if len(c.Fig5Counts) == 0 {
		c.Fig5Counts = def.Fig5Counts
	}
	if c.Fig6Candidates == 0 {
		c.Fig6Candidates = def.Fig6Candidates
	}
	if c.Table5Train == 0 {
		c.Table5Train = def.Table5Train
	}
	if c.Table5Test == 0 {
		c.Table5Test = def.Table5Test
	}
	if c.AttackCandidates == 0 {
		c.AttackCandidates = def.AttackCandidates
	}
	if c.AblationCandidates == 0 {
		c.AblationCandidates = def.AblationCandidates
	}
	if c.AblationSamples == 0 {
		c.AblationSamples = def.AblationSamples
	}
	return c
}

// PipelineConfig lowers the suite config to the pipeline Config, filling
// §6.1 defaults for zero-valued privacy knobs.
func (c SuiteConfig) PipelineConfig() Config {
	cfg := DefaultConfig(c.N, c.Seed)
	cfg.Workers = c.Workers
	if c.ModelEps != 0 {
		cfg.ModelEps = c.ModelEps
	}
	if c.ModelDelta != 0 {
		cfg.ModelDelta = c.ModelDelta
	}
	if c.K != 0 {
		cfg.K = c.K
	}
	if c.Gamma != 0 {
		cfg.Gamma = c.Gamma
	}
	if c.Eps0 != 0 {
		cfg.Eps0 = c.Eps0
	}
	if len(c.Omegas) > 0 {
		cfg.Omegas = c.Omegas
	}
	if c.SynthPerVariant != 0 {
		cfg.SynthPerVariant = c.SynthPerVariant
	}
	if c.MaxPlausible != 0 {
		cfg.MaxPlausible = c.MaxPlausible
	}
	if c.MaxCheckPlausible != 0 {
		cfg.MaxCheckPlausible = c.MaxCheckPlausible
	}
	if c.MaxCost != 0 {
		cfg.MaxCost = c.MaxCost
	}
	return cfg
}

// Validate rejects malformed suite configs (unknown sections, bad scale)
// before any work is spent on them.
func (c SuiteConfig) Validate() error {
	if c.N < 100 {
		return fmt.Errorf("eval: need at least 100 records, got %d", c.N)
	}
	known := make(map[string]bool, len(SuiteSections))
	for _, s := range SuiteSections {
		known[s] = true
	}
	for _, s := range c.Sections {
		if !known[s] {
			return fmt.Errorf("eval: unknown section %q (known: %s)", s, strings.Join(SuiteSections, ", "))
		}
	}
	if c.Reps < 0 {
		return fmt.Errorf("eval: negative reps %d", c.Reps)
	}
	return nil
}

// wants reports whether the named section is selected.
func (c SuiteConfig) wants(section string) bool {
	if len(c.Sections) == 0 {
		return true
	}
	for _, s := range c.Sections {
		if s == section {
			return true
		}
	}
	return false
}

// VariantSummary reports one ω variant's generation statistics.
type VariantSummary struct {
	Omega      OmegaSpec `json:"omega"`
	Candidates int       `json:"candidates"`
	Released   int       `json:"released"`
	PassRate   float64   `json:"pass_rate"`
}

// PipelineSummary is the header block of the report: split sizes, budgets,
// structure shape, per-variant generation stats and the Fig. 5 wall-clock
// components. The *MS fields are timings and therefore not reproducible
// run-to-run; everything else is seed-determined.
type PipelineSummary struct {
	SplitDT      int              `json:"split_dt"`
	SplitDP      int              `json:"split_dp"`
	SplitDS      int              `json:"split_ds"`
	SplitTest    int              `json:"split_test"`
	BudgetEps    float64          `json:"budget_eps"`
	BudgetDelta  float64          `json:"budget_delta"`
	Edges        int              `json:"edges"`
	Order        []string         `json:"order"`
	Variants     []VariantSummary `json:"variants"`
	ModelLearnMS int64            `json:"model_learn_ms"`
	SynthMS      int64            `json:"synth_ms"`
}

// SuiteResult is the full §6 report: the same tables and figure series
// cmd/experiments prints, as data. Sections that were not selected are nil
// and omitted from the JSON.
type SuiteResult struct {
	Config    Config              `json:"config"`
	Pipeline  PipelineSummary     `json:"pipeline"`
	Table2    *dataset.CleanStats `json:"table2,omitempty"`
	Fig12     *Fig12Result        `json:"fig12,omitempty"`
	Fig34     *DistanceResult     `json:"fig34,omitempty"`
	Fig5      *PerfResult         `json:"fig5,omitempty"`
	Fig6      *PassRateResult     `json:"fig6,omitempty"`
	Table3    *Table3Result       `json:"table3,omitempty"`
	Table4    *Table4Result       `json:"table4,omitempty"`
	Table5    *Table5Result       `json:"table5,omitempty"`
	Attack    *AttackResult       `json:"attack,omitempty"`
	Sigma     *SigmaOrderAblation `json:"sigma,omitempty"`
	MaxCost   *MaxCostAblation    `json:"maxcost,omitempty"`
	ParamMode *ParamModeAblation  `json:"parammode,omitempty"`
	ElapsedMS int64               `json:"elapsed_ms"`
}

// RunSuite executes the selected sections of the §6 evaluation. ctx aborts
// the run at the next section/loop boundary; progress (may be nil) receives
// monotonically non-decreasing completion fractions, with the pipeline
// build weighted as four sections.
func RunSuite(ctx context.Context, cfg SuiteConfig, progress ProgressFunc) (*SuiteResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.WithDefaults()

	// Stage bookkeeping: the pipeline build counts for pipelineWeight units,
	// every other selected section for one.
	const pipelineWeight = 4
	sections := make([]string, 0, len(SuiteSections))
	for _, s := range SuiteSections[1:] { // skip "pipeline"
		if cfg.wants(s) {
			sections = append(sections, s)
		}
	}
	totalUnits := float64(pipelineWeight + len(sections))
	unitsDone := 0.0
	stageStart := func(name string) {
		progress.report(name, unitsDone/totalUnits)
	}

	start := time.Now()
	stageStart("pipeline")
	p, err := BuildPipelineCtx(ctx, cfg.PipelineConfig(), func(stage string, frac float64) {
		progress.report("pipeline: "+stage, frac*pipelineWeight/totalUnits)
	})
	if err != nil {
		return nil, fmt.Errorf("eval: pipeline: %w", err)
	}
	unitsDone = pipelineWeight

	res := &SuiteResult{Config: p.Cfg}
	res.Pipeline = summarizePipeline(p)

	for _, section := range sections {
		stageStart(section)
		if err := runSection(ctx, section, cfg, p, res); err != nil {
			return nil, fmt.Errorf("eval: %s: %w", section, err)
		}
		unitsDone++
	}
	res.ElapsedMS = time.Since(start).Milliseconds()
	progress.report("done", 1)
	return res, nil
}

// runSection dispatches one named section against the shared pipeline.
func runSection(ctx context.Context, section string, cfg SuiteConfig, p *Pipeline, res *SuiteResult) error {
	var err error
	switch section {
	case "table2":
		var st dataset.CleanStats
		if st, err = RunTable2(ctx, cfg.N, cfg.Seed); err == nil {
			res.Table2 = &st
		}
	case "fig12":
		res.Fig12, err = RunFig12(ctx, p, cfg.Reps, cfg.Fig12Probes)
	case "fig34":
		res.Fig34, err = RunFig34(ctx, p)
	case "fig5":
		res.Fig5, err = RunFig5(ctx, p, cfg.Fig5Counts)
	case "fig6":
		res.Fig6, err = RunFig6(ctx, p, cfg.Fig6Ks, nil, cfg.Fig6Candidates)
	case "table3":
		res.Table3, err = RunTable3(ctx, p, cfg.Reps)
	case "table4":
		res.Table4, err = RunTable4(ctx, p, nil)
	case "table5":
		res.Table5, err = RunTable5(ctx, p, cfg.Table5Train, cfg.Table5Test)
	case "attack":
		res.Attack, err = RunSeedInference(ctx, p, OmegaSpec{Lo: 9, Hi: 9}, cfg.AttackCandidates)
	case "sigma":
		res.Sigma, err = RunSigmaOrderAblation(ctx, p, OmegaSpec{Lo: 9, Hi: 9}, p.Cfg.K, cfg.AblationCandidates)
	case "maxcost":
		res.MaxCost, err = RunMaxCostAblation(ctx, p, nil, cfg.AblationSamples)
	case "parammode":
		res.ParamMode, err = RunParamModeAblation(ctx, p, cfg.AblationSamples)
	default:
		err = fmt.Errorf("unknown section")
	}
	return err
}

// summarizePipeline extracts the report header from a built pipeline.
func summarizePipeline(p *Pipeline) PipelineSummary {
	sum := PipelineSummary{
		SplitDT:      p.DT.Len(),
		SplitDP:      p.DP.Len(),
		SplitDS:      p.DS.Len(),
		SplitTest:    p.Test.Len(),
		BudgetEps:    p.Budgets.Model.Epsilon,
		BudgetDelta:  p.Budgets.Model.Delta,
		Edges:        p.Structure.Graph.NumEdges(),
		ModelLearnMS: p.ModelLearnTime.Milliseconds(),
		SynthMS:      p.SynthTime.Milliseconds(),
	}
	for _, attr := range p.Structure.Order {
		sum.Order = append(sum.Order, p.Meta.Attrs[attr].Name)
	}
	for _, om := range p.Cfg.Omegas {
		st := p.SynthStats[om.Name()]
		sum.Variants = append(sum.Variants, VariantSummary{
			Omega:      om,
			Candidates: st.Candidates,
			Released:   st.Released,
			PassRate:   st.PassRate(),
		})
	}
	return sum
}

// Render produces the plain-text report, section for section the same
// output cmd/experiments has always printed.
func (r *SuiteResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Plausible Deniability for Privacy-Preserving Data Synthesis — evaluation\n")
	fmt.Fprintf(&sb, "n=%d synth-per-variant=%d seed=%d\n\n",
		r.Config.N, r.Config.SynthPerVariant, r.Config.Seed)
	fmt.Fprintf(&sb, "pipeline: DT=%d DP=%d DS=%d test=%d; model learning %dms; synthesis %dms\n",
		r.Pipeline.SplitDT, r.Pipeline.SplitDP, r.Pipeline.SplitDS, r.Pipeline.SplitTest,
		r.Pipeline.ModelLearnMS, r.Pipeline.SynthMS)
	fmt.Fprintf(&sb, "model budget: (%g, %g)\n", r.Pipeline.BudgetEps, r.Pipeline.BudgetDelta)
	fmt.Fprintf(&sb, "structure: %d edges; order %v\n\n", r.Pipeline.Edges, r.Pipeline.Order)
	for _, v := range r.Pipeline.Variants {
		fmt.Fprintf(&sb, "variant %-18s %d candidates -> %d released (%.1f%%)\n",
			v.Omega.Name(), v.Candidates, v.Released, 100*v.PassRate)
	}
	sb.WriteByte('\n')

	if r.Table2 != nil {
		fmt.Fprintf(&sb, "Table 2: %s\n\n", r.Table2)
	}
	if r.Fig12 != nil {
		sb.WriteString(r.Fig12.RenderFig1() + "\n" + r.Fig12.RenderFig2() + "\n")
	}
	if r.Fig34 != nil {
		sb.WriteString(r.Fig34.Render() + "\n")
	}
	if r.Fig5 != nil {
		sb.WriteString(r.Fig5.Render() + "\n")
	}
	if r.Fig6 != nil {
		sb.WriteString(r.Fig6.Render() + "\n")
	}
	if r.Table3 != nil {
		sb.WriteString(r.Table3.Render() + "\n")
	}
	if r.Table4 != nil {
		sb.WriteString(r.Table4.Render() + "\n")
	}
	if r.Table5 != nil {
		sb.WriteString(r.Table5.Render() + "\n")
	}
	if r.Attack != nil {
		sb.WriteString(r.Attack.Render() + "\n")
	}
	if r.Sigma != nil {
		sb.WriteString(r.Sigma.Render() + "\n")
	}
	if r.MaxCost != nil {
		sb.WriteString(r.MaxCost.Render() + "\n")
	}
	if r.ParamMode != nil {
		sb.WriteString(r.ParamMode.Render() + "\n")
	}
	fmt.Fprintf(&sb, "total runtime: %dms\n", r.ElapsedMS)
	return sb.String()
}
