package eval

import (
	"context"
	"fmt"

	"repro/internal/bayesnet"
	"repro/internal/ml"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// Fig12Result holds the per-attribute model accuracies of Figures 1 and 2.
type Fig12Result struct {
	AttrNames []string
	// Figure 1: relative improvement of model accuracy over marginals (in
	// percent) for the un-noised, ε=1-DP and ε=0.1-DP generative models.
	ImprovNoNoise []float64
	ImprovEps1    []float64
	ImprovEps01   []float64
	// Figure 2: absolute accuracy of the (un-noised) generative model, a
	// random forest, the marginals, and random guessing.
	AccGenerative []float64
	AccRF         []float64
	AccMarginals  []float64
	AccRandom     []float64
}

// RunFig12 reproduces §6.2's model-accuracy probe: for each attribute,
// repeatedly take a test record and ask the model for the most likely value
// of that attribute given all the others (exact Markov-blanket inference);
// the error is the fraction of wrong predictions. DP models are re-learned
// `reps` times with fresh noise and averaged, as in the paper (20 reps).
// ctx is honoured between model relearns and per-attribute sweeps.
func RunFig12(ctx context.Context, p *Pipeline, reps, probes int) (*Fig12Result, error) {
	if reps < 1 {
		reps = 1
	}
	if probes <= 0 || probes > p.Test.Len() {
		probes = p.Test.Len()
	}
	m := len(p.Meta.Attrs)
	res := &Fig12Result{
		AttrNames:     p.Meta.Names(),
		ImprovNoNoise: make([]float64, m),
		ImprovEps1:    make([]float64, m),
		ImprovEps01:   make([]float64, m),
		AccGenerative: make([]float64, m),
		AccRF:         make([]float64, m),
		AccMarginals:  make([]float64, m),
		AccRandom:     make([]float64, m),
	}

	r := rng.New(p.Cfg.Seed + 0xf1f2)
	probeSet := p.Test.Shuffled(r).Head(probes)

	// Marginal accuracy: the best constant guess per attribute.
	margAcc := make([]float64, m)
	for a := 0; a < m; a++ {
		dist := p.MarginalModel.MarginalDist(a)
		best := 0
		for v := range dist {
			if dist[v] > dist[best] {
				best = v
			}
		}
		correct := 0
		for _, rec := range probeSet.Rows() {
			if int(rec[a]) == best {
				correct++
			}
		}
		margAcc[a] = float64(correct) / float64(probeSet.Len())
		res.AccMarginals[a] = margAcc[a]
		res.AccRandom[a] = 1 / float64(p.Meta.Attrs[a].Card())
	}

	// Model accuracy at each noise level, averaged over reps.
	accAt := func(dp bool, eps float64, rep int) ([]float64, error) {
		st := p.Structure
		model := p.Model
		if !dp || eps != p.Cfg.ModelEps || rep > 0 {
			var err error
			st, model, err = p.learnModelVariant(dp, eps, uint64(rep))
			if err != nil {
				return nil, err
			}
		}
		_ = st
		acc := make([]float64, m)
		for a := 0; a < m; a++ {
			correct := 0
			for _, rec := range probeSet.Rows() {
				if model.MostLikely(a, rec) == rec[a] {
					correct++
				}
			}
			acc[a] = float64(correct) / float64(probeSet.Len())
		}
		return acc, nil
	}

	average := func(dp bool, eps float64, nreps int) ([]float64, error) {
		sum := make([]float64, m)
		for rep := 0; rep < nreps; rep++ {
			if err := checkCtx(ctx); err != nil {
				return nil, err
			}
			acc, err := accAt(dp, eps, rep)
			if err != nil {
				return nil, err
			}
			for a := range sum {
				sum[a] += acc[a]
			}
		}
		for a := range sum {
			sum[a] /= float64(nreps)
		}
		return sum, nil
	}

	accPlain, err := average(false, 0, 1) // un-noised: deterministic, 1 rep
	if err != nil {
		return nil, err
	}
	accEps1, err := average(true, 1, reps)
	if err != nil {
		return nil, err
	}
	accEps01, err := average(true, 0.1, reps)
	if err != nil {
		return nil, err
	}

	// Relative improvement of model accuracy over marginals, measured as
	// the relative decrease in model error (Fig. 1).
	relImprove := func(acc, base float64) float64 {
		errBase := 1 - base
		if errBase <= 0 {
			return 0
		}
		return 100 * (acc - base) / errBase
	}
	for a := 0; a < m; a++ {
		res.ImprovNoNoise[a] = relImprove(accPlain[a], margAcc[a])
		res.ImprovEps1[a] = relImprove(accEps1[a], margAcc[a])
		res.ImprovEps01[a] = relImprove(accEps01[a], margAcc[a])
		res.AccGenerative[a] = accPlain[a]
	}

	// Figure 2's random forest: one per attribute, trained on the same
	// data the generative model saw (DT ∪ DP equivalent: use DP).
	for a := 0; a < m; a++ {
		if err := checkCtx(ctx); err != nil {
			return nil, err
		}
		prob, err := ml.FromDataset(p.DP, a)
		if err != nil {
			return nil, err
		}
		forest, err := ml.TrainForest(prob, ml.ForestConfig{
			Trees: 24, MaxDepth: 14, Seed: p.Cfg.Seed + uint64(a),
		})
		if err != nil {
			return nil, err
		}
		testProb, err := ml.FromDataset(probeSet, a)
		if err != nil {
			return nil, err
		}
		res.AccRF[a] = ml.Accuracy(forest, testProb)
	}
	return res, nil
}

// learnModelVariant learns a fresh structure+model at the given noise level
// (dp=false means un-noised), with rep-dependent noise streams.
func (p *Pipeline) learnModelVariant(dp bool, eps float64, rep uint64) (*bayesnet.Structure, *bayesnet.Model, error) {
	scfg := bayesnet.StructureConfig{MaxCost: p.Cfg.MaxCost, MinCorr: 0.01}
	mcfg := bayesnet.ModelConfig{Alpha: 1, Mode: bayesnet.MAPEstimate}
	if dp {
		budgets, err := privacyBudgetsFor(len(p.Meta.Attrs), eps, p.Cfg.ModelDelta)
		if err != nil {
			return nil, nil, err
		}
		scfg.DP = true
		scfg.EpsH = budgets.EpsH
		scfg.EpsN = budgets.EpsN
		scfg.Rng = rng.NewHashed("fig1-structure", fmt.Sprint(eps), fmt.Sprint(rep), fmt.Sprint(p.Cfg.Seed))
		mcfg.DP = true
		mcfg.EpsP = budgets.EpsP
		mcfg.NoiseKey = fmt.Sprintf("fig1-model-%g-%d-%d", eps, rep, p.Cfg.Seed)
	}
	st, err := bayesnet.LearnStructure(p.DT, p.Bkt, scfg)
	if err != nil {
		return nil, nil, err
	}
	model, err := bayesnet.LearnModel(p.DP, p.Bkt, st, mcfg)
	if err != nil {
		return nil, nil, err
	}
	return st, model, nil
}

// privacyBudgetsFor memoizes nothing and simply calibrates; split out so
// the Fig. 1 variants can request arbitrary ε levels.
func privacyBudgetsFor(m int, eps, delta float64) (privacy.ModelNoiseBudgets, error) {
	return privacy.CalibrateModel(m, eps, delta)
}
