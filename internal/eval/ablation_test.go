package eval

import (
	"context"
	"strings"
	"testing"
)

func TestRunSeedInference(t *testing.T) {
	p := testPipeline(t)
	res, err := RunSeedInference(context.Background(), p, OmegaSpec{9, 9}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Released+res.Rejected != res.Candidates {
		t.Fatalf("group counts %d+%d != %d", res.Released, res.Rejected, res.Candidates)
	}
	if res.Released == 0 {
		t.Fatal("no released candidates; attack experiment vacuous")
	}
	// The core privacy claim, verified adversarially: on released records
	// the ML adversary's success must be near or below the 1/k deniability
	// bound (2/k allows for unequal partition occupancy).
	if res.SuccessReleased > 2*res.BoundReleased {
		t.Errorf("attack success %.4f on released records far exceeds bound %.4f",
			res.SuccessReleased, res.BoundReleased)
	}
	// Rejected records are exactly the dangerous ones.
	if res.Rejected > 10 && res.SuccessRejected < res.SuccessReleased {
		t.Errorf("rejected records (%.4f) should be easier to attack than released (%.4f)",
			res.SuccessRejected, res.SuccessReleased)
	}
	if !strings.Contains(res.Render(), "Seed-inference") {
		t.Fatal("render output malformed")
	}
}

func TestSigmaOrderAblation(t *testing.T) {
	p := testPipeline(t)
	res, err := RunSigmaOrderAblation(context.Background(), p, OmegaSpec{9, 9}, 20, 200)
	if err != nil {
		t.Fatal(err)
	}
	// The cardinality-preferring order must pass at least as often as the
	// index order (that is the point of the design choice).
	if res.PassRateCardinality < res.PassRateIndexOrdered-0.05 {
		t.Errorf("cardinality order pass rate %.3f below index order %.3f",
			res.PassRateCardinality, res.PassRateIndexOrdered)
	}
	if !strings.Contains(res.Render(), "sigma order") {
		t.Fatal("render output malformed")
	}
}

func TestMaxCostAblation(t *testing.T) {
	p := testPipeline(t)
	res, err := RunMaxCostAblation(context.Background(), p, []float64{4, 64}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PairTVDPlain) != 2 || len(res.PairTVDDP) != 2 {
		t.Fatalf("result vectors wrong length: %+v", res)
	}
	for i := range res.MaxCosts {
		if res.PairTVDPlain[i] <= 0 || res.PairTVDPlain[i] > 1 {
			t.Errorf("implausible TVD %.4f", res.PairTVDPlain[i])
		}
		// DP noise can only hurt (statistically); allow small slack.
		if res.PairTVDDP[i] < res.PairTVDPlain[i]-0.02 {
			t.Errorf("maxcost %.0f: DP model (%.4f) better than un-noised (%.4f)",
				res.MaxCosts[i], res.PairTVDDP[i], res.PairTVDPlain[i])
		}
	}
	if !strings.Contains(res.Render(), "maxcost") {
		t.Fatal("render output malformed")
	}
}

func TestParamModeAblation(t *testing.T) {
	p := testPipeline(t)
	res, err := RunParamModeAblation(context.Background(), p, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueFracMAP <= 0 || res.UniqueFracSampled <= 0 {
		t.Fatal("unique fractions not measured")
	}
	if res.PairTVDMAP <= 0 || res.PairTVDSampled <= 0 {
		t.Fatal("TVDs not measured")
	}
	if !strings.Contains(res.Render(), "parameter mode") {
		t.Fatal("render output malformed")
	}
}
