package eval

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/stats"
)

// DistanceResult holds the Figure 3 (single attributes) and Figure 4 (pairs
// of attributes) statistical-distance box-plot summaries: for each series,
// the five-number summary of the total variation distances between the
// reference reals and the compared dataset, over all attributes (Fig. 3)
// or all attribute pairs (Fig. 4).
type DistanceResult struct {
	Series  []string
	Singles map[string]stats.FiveNumber
	Pairs   map[string]stats.FiveNumber
}

// RunFig34 reproduces §6.2's distributional comparison. The test reals are
// split in two halves; the first half is the reference. The "Reals" series
// compares it against the second half (the noise floor of the metric); the
// other series compare it against marginals and each ω synthetic dataset.
// ctx is honoured between series.
func RunFig34(ctx context.Context, p *Pipeline) (*DistanceResult, error) {
	half := p.Test.Len() / 2
	if half < 10 {
		return nil, fmt.Errorf("eval: test split too small for distance comparison (%d)", p.Test.Len())
	}
	sh := p.Test.Shuffled(rng.New(p.Cfg.Seed + 0x34))
	ref, err := sh.Split(half, half)
	if err != nil {
		return nil, err
	}
	reference, otherReals := ref[0], ref[1]

	res := &DistanceResult{
		Singles: map[string]stats.FiveNumber{},
		Pairs:   map[string]stats.FiveNumber{},
	}
	addSeries := func(name string, ds *dataset.Dataset) error {
		if err := checkCtx(ctx); err != nil {
			return err
		}
		res.Series = append(res.Series, name)
		res.Singles[name] = stats.Summarize(singleDistances(reference, ds))
		res.Pairs[name] = stats.Summarize(pairDistances(reference, ds))
		return nil
	}

	if err := addSeries("Reals", otherReals); err != nil {
		return nil, err
	}
	if err := addSeries("Marginals", p.Marginals); err != nil {
		return nil, err
	}
	for _, om := range p.Cfg.Omegas {
		if err := addSeries(om.Name(), p.Synths[om.Name()]); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// singleDistances returns the TVD of each attribute's distribution between
// the two datasets.
func singleDistances(a, b *dataset.Dataset) []float64 {
	m := a.NumAttrs()
	out := make([]float64, 0, m)
	for attr := 0; attr < m; attr++ {
		card := a.Meta.Attrs[attr].Card()
		da := stats.FromColumn(a.Column(attr), card)
		db := stats.FromColumn(b.Column(attr), card)
		out = append(out, stats.TotalVariation(da.Probs(), db.Probs()))
	}
	return out
}

// pairDistances returns the TVD of each attribute pair's joint distribution
// between the two datasets.
func pairDistances(a, b *dataset.Dataset) []float64 {
	m := a.NumAttrs()
	var out []float64
	for i := 0; i < m; i++ {
		cardI := a.Meta.Attrs[i].Card()
		colAI, colBI := a.Column(i), b.Column(i)
		for j := i + 1; j < m; j++ {
			cardJ := a.Meta.Attrs[j].Card()
			ja := stats.FromColumns(colAI, cardI, a.Column(j), cardJ)
			jb := stats.FromColumns(colBI, cardI, b.Column(j), cardJ)
			out = append(out, stats.TotalVariation(ja.Flatten(), jb.Flatten()))
		}
	}
	return out
}
