package sgf

import (
	"fmt"
	"io"

	"repro/internal/bayesnet"
	"repro/internal/dataset"
	"repro/internal/wire"
)

// fittedModelVersion versions the FittedModel payload encoding. Bump it on
// any incompatible layout change; Decode rejects payloads from other
// versions. The snapshot container around this payload (internal/store) adds
// its own magic header, format version and checksum.
const fittedModelVersion = 1

// Encode serializes the complete fitted model — schema, bucketizer state,
// learned structure, count tables, the DS seed partition, the spent model
// budget and the split sizes — delegating to the codec hooks of
// internal/dataset and internal/bayesnet.
//
// The encoding is deterministic: the same fitted model always produces the
// same bytes, whether or not it has served queries (the lazily materialized
// probability cache is excluded; it is a pure function of what is encoded).
// A decoded model therefore synthesizes byte-identical output to the
// original for the same SynthOptions.
func (fm *FittedModel) Encode(w io.Writer) error {
	if fm.Model == nil || fm.Structure == nil || fm.Seeds == nil {
		return fmt.Errorf("sgf: cannot encode incomplete fitted model")
	}
	ww := &wire.Writer{}
	ww.Uvarint(fittedModelVersion)
	dataset.EncodeMetadata(ww, fm.Model.Meta)
	dataset.EncodeBucketizer(ww, fm.Model.Bkt)
	bayesnet.EncodeStructure(ww, fm.Structure)
	bayesnet.EncodeModel(ww, fm.Model)
	dataset.EncodeRows(ww, fm.Seeds)
	ww.Float64(fm.ModelBudget.Epsilon)
	ww.Float64(fm.ModelBudget.Delta)
	for _, s := range fm.Splits {
		ww.Int(s)
	}
	_, err := w.Write(ww.Bytes())
	return err
}

// DecodeFittedModel reads a fitted model written by Encode, validating every
// layer (schema, bucket maps, graph acyclicity, count-table shapes, seed
// records) so a corrupt or hand-crafted payload fails here instead of
// panicking during synthesis. The decoded model's sampling tables are frozen
// before it is returned — restoring the lock-free serving path Fit set up,
// and materializing (hence validating) every reachable parameter vector, so
// a poisoned snapshot that slips past the count checks is still rejected at
// decode time rather than on a serving goroutine.
func DecodeFittedModel(r io.Reader) (*FittedModel, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("sgf: reading fitted model: %w", err)
	}
	rr := wire.NewReader(raw)
	if v := rr.Uvarint(); v != fittedModelVersion {
		if err := rr.Err(); err != nil {
			return nil, fmt.Errorf("sgf: decoding fitted model: %w", err)
		}
		return nil, fmt.Errorf("sgf: unsupported fitted-model version %d (supported: %d)", v, fittedModelVersion)
	}
	meta, err := dataset.DecodeMetadata(rr)
	if err != nil {
		return nil, fmt.Errorf("sgf: decoding fitted model: %w", err)
	}
	bkt, err := dataset.DecodeBucketizer(rr, meta)
	if err != nil {
		return nil, fmt.Errorf("sgf: decoding fitted model: %w", err)
	}
	st, err := bayesnet.DecodeStructure(rr, len(meta.Attrs))
	if err != nil {
		return nil, fmt.Errorf("sgf: decoding fitted model: %w", err)
	}
	model, err := bayesnet.DecodeModel(rr, meta, bkt, st)
	if err != nil {
		return nil, fmt.Errorf("sgf: decoding fitted model: %w", err)
	}
	seeds, err := dataset.DecodeRows(rr, meta)
	if err != nil {
		return nil, fmt.Errorf("sgf: decoding fitted model: %w", err)
	}
	fm := &FittedModel{
		Model:     model,
		Structure: st,
		Seeds:     seeds,
	}
	fm.ModelBudget.Epsilon = rr.Float64()
	fm.ModelBudget.Delta = rr.Float64()
	for i := range fm.Splits {
		fm.Splits[i] = rr.Int()
	}
	if err := rr.Done(); err != nil {
		return nil, fmt.Errorf("sgf: decoding fitted model: %w", err)
	}
	if err := fm.Model.Freeze(0); err != nil {
		return nil, fmt.Errorf("sgf: decoding fitted model: %w", err)
	}
	return fm, nil
}
