package sgf

import (
	"fmt"
	"io"

	"repro/internal/backend"
	"repro/internal/backend/bayes"
	"repro/internal/bayesnet"
	"repro/internal/dataset"
	"repro/internal/wire"
)

// Fitted-model payload versions. The snapshot container around this payload
// (internal/store) adds its own magic header, format version and checksum.
const (
	// fittedModelVersion is the current layout: a backend ID followed by a
	// length-prefixed backend-owned model payload, so new backends never
	// change this framing.
	fittedModelVersion = 2
	// fittedModelVersionV1 is the pre-backend layout with the Bayes net
	// hardwired in place of the (backend ID, payload) pair. Still decoded —
	// as the "bayesnet" backend — so snapshots from older deployments keep
	// warm-starting.
	fittedModelVersionV1 = 1
)

// Encode serializes the complete fitted model — backend ID, schema,
// bucketizer state, the backend-owned model payload (structure and count
// tables for the Bayes net, histogram tallies for the marginal backend),
// the DS seed partition, the spent model budget and the split sizes.
//
// The encoding is deterministic: the same fitted model always produces the
// same bytes, whether or not it has served queries (lazily materialized
// probability caches are excluded; they are pure functions of what is
// encoded). A decoded model therefore synthesizes byte-identical output to
// the original for the same SynthOptions.
func (fm *FittedModel) Encode(w io.Writer) error {
	if fm.Gen == nil || fm.Seeds == nil {
		return fmt.Errorf("sgf: cannot encode incomplete fitted model")
	}
	ww := &wire.Writer{}
	ww.Uvarint(fittedModelVersion)
	ww.String(fm.Gen.Backend())
	dataset.EncodeMetadata(ww, fm.Gen.Meta())
	dataset.EncodeBucketizer(ww, fm.Gen.Bucketizer())
	pw := &wire.Writer{}
	fm.Gen.Encode(pw)
	ww.BytesField(pw.Bytes())
	dataset.EncodeRows(ww, fm.Seeds)
	ww.Float64(fm.ModelBudget.Epsilon)
	ww.Float64(fm.ModelBudget.Delta)
	for _, s := range fm.Splits {
		ww.Int(s)
	}
	_, err := w.Write(ww.Bytes())
	return err
}

// DecodeFittedModel reads a fitted model written by Encode, validating every
// layer (schema, bucket maps, the backend's model payload, seed records) so
// a corrupt or hand-crafted payload fails here instead of panicking during
// synthesis. A payload naming an unregistered backend is rejected. The
// decoded model's sampling tables are frozen before it is returned —
// restoring the lock-free serving path Fit set up, and materializing (hence
// validating) every reachable parameter vector, so a poisoned snapshot that
// slips past the count checks is still rejected at decode time rather than
// on a serving goroutine.
func DecodeFittedModel(r io.Reader) (*FittedModel, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("sgf: reading fitted model: %w", err)
	}
	rr := wire.NewReader(raw)
	v := rr.Uvarint()
	if err := rr.Err(); err != nil {
		return nil, fmt.Errorf("sgf: decoding fitted model: %w", err)
	}

	var gen GenerativeModel
	switch v {
	case fittedModelVersionV1:
		// Legacy layout: bayesnet structure and counts inline, no backend ID.
		meta, bkt, err := decodeSchema(rr)
		if err != nil {
			return nil, err
		}
		st, err := bayesnet.DecodeStructure(rr, len(meta.Attrs))
		if err != nil {
			return nil, fmt.Errorf("sgf: decoding fitted model: %w", err)
		}
		model, err := bayesnet.DecodeModel(rr, meta, bkt, st)
		if err != nil {
			return nil, fmt.Errorf("sgf: decoding fitted model: %w", err)
		}
		gen = bayes.New(model, st)
	case fittedModelVersion:
		id := rr.ReadString()
		meta, bkt, err := decodeSchema(rr)
		if err != nil {
			return nil, err
		}
		payload := rr.BytesField()
		if err := rr.Err(); err != nil {
			return nil, fmt.Errorf("sgf: decoding fitted model: %w", err)
		}
		be, ok := backend.Lookup(id)
		if !ok {
			return nil, fmt.Errorf("sgf: snapshot uses unknown backend %q (registered: %v)", id, backend.IDs())
		}
		pr := wire.NewReader(payload)
		gen, err = be.Decode(pr, meta, bkt)
		if err != nil {
			return nil, fmt.Errorf("sgf: decoding %s model: %w", id, err)
		}
		// The backend must consume its payload exactly; trailing bytes mean
		// a corrupt or mismatched encoding.
		if err := pr.Done(); err != nil {
			return nil, fmt.Errorf("sgf: decoding %s model: %w", id, err)
		}
	default:
		return nil, fmt.Errorf("sgf: unsupported fitted-model version %d (supported: %d, %d)",
			v, fittedModelVersionV1, fittedModelVersion)
	}

	seeds, err := dataset.DecodeRows(rr, gen.Meta())
	if err != nil {
		return nil, fmt.Errorf("sgf: decoding fitted model: %w", err)
	}
	fm := &FittedModel{
		Backend: gen.Backend(),
		Gen:     gen,
		Seeds:   seeds,
	}
	if bm, ok := gen.(*bayes.Model); ok {
		fm.Model, fm.Structure = bm.M, bm.St
	}
	fm.ModelBudget.Epsilon = rr.Float64()
	fm.ModelBudget.Delta = rr.Float64()
	for i := range fm.Splits {
		fm.Splits[i] = rr.Int()
	}
	if err := rr.Done(); err != nil {
		return nil, fmt.Errorf("sgf: decoding fitted model: %w", err)
	}
	if err := fm.Gen.Freeze(0); err != nil {
		return nil, fmt.Errorf("sgf: decoding fitted model: %w", err)
	}
	return fm, nil
}

// decodeSchema reads the metadata/bucketizer pair shared by both payload
// layouts.
func decodeSchema(rr *wire.Reader) (*dataset.Metadata, *dataset.Bucketizer, error) {
	meta, err := dataset.DecodeMetadata(rr)
	if err != nil {
		return nil, nil, fmt.Errorf("sgf: decoding fitted model: %w", err)
	}
	bkt, err := dataset.DecodeBucketizer(rr, meta)
	if err != nil {
		return nil, nil, fmt.Errorf("sgf: decoding fitted model: %w", err)
	}
	return meta, bkt, nil
}
