package sgf_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	sgf "repro"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// codecTestData builds a small correlated dataset over a mixed
// categorical/numerical schema.
func codecTestData(t testing.TB, n int) *sgf.Dataset {
	t.Helper()
	meta, err := dataset.NewMetadata(
		dataset.NewCategorical("COLOR", "red", "green", "blue"),
		dataset.NewCategorical("SIZE", "s", "m", "l"),
		dataset.NewNumerical("GRADE", 0, 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.New(meta)
	r := rng.New(7)
	for i := 0; i < n; i++ {
		c := uint16(r.Intn(3))
		s := c
		if r.Float64() < 0.3 {
			s = uint16(r.Intn(3))
		}
		g := uint16((int(c) + r.Intn(2)) % 4)
		data.Append(dataset.Record{c, s, g})
	}
	return data
}

func codecFit(t testing.TB, data *sgf.Dataset) *sgf.FittedModel {
	t.Helper()
	bkt := dataset.NewBucketizer(data.Meta)
	if err := bkt.SetWidth(2, 2); err != nil { // exercise a non-identity bucketizer
		t.Fatal(err)
	}
	fm, err := sgf.Fit(data, sgf.FitOptions{ModelEps: 1, Bucketizer: bkt, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return fm
}

func codecSynth(t testing.TB, fm *sgf.FittedModel) *sgf.Dataset {
	t.Helper()
	out, _, err := fm.Synthesize(context.Background(), sgf.SynthOptions{
		Records: 30, K: 3, Gamma: 8, Eps0: 1, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFittedModelRoundTripDeterminism is the snapshot contract: a decoded
// model synthesizes byte-identically to the model it was encoded from, and
// encoding is itself deterministic — the same bytes before and after the
// model has served queries (the lazily materialized parameter cache must
// not leak into the payload).
func TestFittedModelRoundTripDeterminism(t *testing.T) {
	fm := codecFit(t, codecTestData(t, 300))

	var before bytes.Buffer
	if err := fm.Encode(&before); err != nil {
		t.Fatal(err)
	}
	out1 := codecSynth(t, fm) // populates the parameter cache
	var after bytes.Buffer
	if err := fm.Encode(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("encoding changed after the model served a query")
	}

	fm2, err := sgf.DecodeFittedModel(bytes.NewReader(after.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if fm2.ModelBudget != fm.ModelBudget {
		t.Errorf("budget %v != %v", fm2.ModelBudget, fm.ModelBudget)
	}
	if fm2.Splits != fm.Splits {
		t.Errorf("splits %v != %v", fm2.Splits, fm.Splits)
	}
	if fm2.Seeds.Len() != fm.Seeds.Len() {
		t.Fatalf("seeds %d != %d", fm2.Seeds.Len(), fm.Seeds.Len())
	}

	out2 := codecSynth(t, fm2)
	if out1.Len() != out2.Len() {
		t.Fatalf("released %d records, want %d", out2.Len(), out1.Len())
	}
	for i := 0; i < out1.Len(); i++ {
		if !out1.Row(i).Equal(out2.Row(i)) {
			t.Fatalf("record %d differs after round trip: %v vs %v", i, out1.Row(i), out2.Row(i))
		}
	}

	// And the round trip is a fixed point: re-encoding the decoded model
	// reproduces the payload bit-for-bit.
	var again bytes.Buffer
	if err := fm2.Encode(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), after.Bytes()) {
		t.Fatal("decode→encode is not a fixed point")
	}
}

func TestDecodeFittedModelRejectsBadPayloads(t *testing.T) {
	fm := codecFit(t, codecTestData(t, 200))
	var buf bytes.Buffer
	if err := fm.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Wrong version: the payload starts with uvarint version 1.
	bumped := append([]byte{}, valid...)
	bumped[0] = 99
	if _, err := sgf.DecodeFittedModel(bytes.NewReader(bumped)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("version 99 accepted (err = %v)", err)
	}

	// Truncations must error, never panic.
	for _, n := range []int{0, 1, len(valid) / 2, len(valid) - 1} {
		if _, err := sgf.DecodeFittedModel(bytes.NewReader(valid[:n])); err == nil {
			t.Fatalf("truncated payload (%d bytes) accepted", n)
		}
	}

	// Trailing garbage means the payload is not what the encoder produced.
	if _, err := sgf.DecodeFittedModel(bytes.NewReader(append(append([]byte{}, valid...), 0xFF))); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}
