// Package sgf is the public API of the synthetic generation framework: a Go
// implementation of "Plausible Deniability for Privacy-Preserving Data
// Synthesis" (Bindschaedler, Shokri, Gunter — VLDB 2017).
//
// The framework separates privacy-preserving data release into two
// independent modules (§2 of the paper):
//
//  1. a seed-based generative model — a Bayesian-network-style conditional
//     model learned with differential privacy (packages bayesnet, privacy) —
//     that turns a real record into a candidate synthetic record, and
//  2. a privacy test that releases a candidate only if at least k records
//     of the input data could have generated it with probability within a
//     factor γ (plausible deniability, Definition 1). Randomizing the
//     test's threshold makes the whole mechanism (ε, δ)-differentially
//     private (Theorem 1).
//
// Quickstart:
//
//	meta := …                       // schema (see dataset.Metadata)
//	data := …                       // *sgf.Dataset of real records
//	out, report, err := sgf.Synthesize(data, sgf.Options{
//		Records: 10000,
//		K:       50,
//		Gamma:   4,
//		Eps0:    1,
//		OmegaLo: 5, OmegaHi: 11,
//		ModelEps: 1, ModelDelta: 1e-9,
//		Seed: 42,
//	})
//
// The sub-packages remain importable for fine-grained control; this package
// re-exports the main types and provides the one-call pipeline.
package sgf

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/backend"
	"repro/internal/backend/bayes"
	"repro/internal/bayesnet"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/privacy"
	"repro/internal/rng"

	// Linked for its registration side effect: the independent-marginals
	// backend is selectable by name wherever sgf is imported.
	_ "repro/internal/backend/marginal"
)

// Re-exported data substrate types.
type (
	// Dataset is an in-memory table of coded records.
	Dataset = dataset.Dataset
	// Record is one coded data row.
	Record = dataset.Record
	// Metadata describes a dataset schema.
	Metadata = dataset.Metadata
	// Attribute describes one column.
	Attribute = dataset.Attribute
	// Bucketizer is the bkt() discretizer used during structure learning.
	Bucketizer = dataset.Bucketizer
	// CleanStats summarizes CSV extraction and cleaning.
	CleanStats = dataset.CleanStats
)

// Re-exported model types.
type (
	// Model is the learned generative model (eq. 2).
	Model = bayesnet.Model
	// Structure is the learned dependency structure.
	Structure = bayesnet.Structure
	// StructureConfig controls CFS structure learning.
	StructureConfig = bayesnet.StructureConfig
	// ModelConfig controls parameter learning.
	ModelConfig = bayesnet.ModelConfig
)

// Re-exported core mechanism types.
type (
	// Synthesizer is a generative model M with computable Pr{y = M(d)}.
	Synthesizer = core.Synthesizer
	// SeedSynthesizer is the seed-based synthesis of §3.2.
	SeedSynthesizer = core.SeedSynthesizer
	// MarginalSynthesizer is the independent-marginals baseline.
	MarginalSynthesizer = core.MarginalSynthesizer
	// TestConfig parameterizes the plausible deniability privacy test.
	TestConfig = core.TestConfig
	// TestResult is one privacy-test outcome.
	TestResult = core.TestResult
	// Mechanism is Mechanism 1 of the paper.
	Mechanism = core.Mechanism
	// GenStats aggregates a generation run.
	GenStats = core.GenStats
	// Budget is an (ε, δ) differential privacy guarantee.
	Budget = privacy.Budget
)

// Re-exported backend-interface types. The backend seam (internal/backend)
// is what makes the privacy test mechanism-agnostic in code, not just in
// the paper: any registered GenerativeModel can sit under Mechanism 1.
type (
	// GenerativeModel is a fitted generative model behind the pluggable
	// backend interface (see internal/backend and docs/BACKENDS.md).
	GenerativeModel = backend.Model
	// ModelDescription is a backend-neutral summary of a fitted model's
	// learned dependency structure.
	ModelDescription = backend.Description
)

// DefaultBackend is the backend used when FitOptions.Backend is empty: the
// paper's seed-based Bayes-net synthesis.
const DefaultBackend = backend.Default

// Backends returns the registered generative-model backend IDs, sorted.
func Backends() []string { return backend.IDs() }

// RNG re-exports the deterministic generator used across the framework.
type RNG = rng.RNG

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// Options parameterizes the one-call Synthesize pipeline.
type Options struct {
	// Records is the number of synthetic records to release.
	Records int
	// K is the plausible deniability parameter k ≥ 1 of Definition 1.
	K int
	// Gamma is the indistinguishability ratio γ > 1 of Definition 1.
	Gamma float64
	// Eps0 randomizes the test threshold (Privacy Test 2); > 0 makes each
	// release (ε0+ln(1+γ/t), e^(−ε0(k−t)))-DP per Theorem 1. Zero selects
	// the deterministic Privacy Test 1 (plausible deniability only).
	Eps0 float64
	// OmegaLo/OmegaHi give the per-candidate re-sampled attribute count
	// range (§3.2); equal values fix ω.
	OmegaLo, OmegaHi int
	// ModelEps/ModelDelta set the differential privacy budget of the
	// generative model itself (§3.5). ModelEps <= 0 trains without noise
	// (the seeds are still protected by the privacy test).
	ModelEps, ModelDelta float64
	// Bucketizer optionally coarsens parent configurations (bkt(), §3.3);
	// nil means no bucketization.
	Bucketizer *dataset.Bucketizer
	// MaxCost caps parent-set complexity (eq. 6; 0 = 128).
	MaxCost float64
	// Backend selects the generative-model backend ("" = DefaultBackend).
	Backend string
	// MaxPlausible / MaxCheckPlausible are the §5 early-exit knobs
	// (0 = unlimited).
	MaxPlausible, MaxCheckPlausible int
	// Workers bounds generation parallelism (0 = GOMAXPROCS).
	Workers int
	// Seed drives all randomness.
	Seed uint64
}

// Report describes what a Synthesize run did.
type Report struct {
	// Gen aggregates candidate/release counts and timing.
	Gen GenStats
	// ModelBudget is the (ε, δ) spent learning the model (zero when the
	// model was trained without noise).
	ModelBudget Budget
	// ReleaseBudget is the per-released-record (ε, δ) of Theorem 1
	// (zero when the deterministic test was used).
	ReleaseBudget Budget
	// Structure is the learned dependency structure (nil for backends
	// without one, e.g. "marginal").
	Structure *Structure
	// Splits records the sizes of the DT/DP/DS partitions used.
	Splits [3]int
}

// FitOptions parameterizes the model-learning half of the pipeline (§3.3 to
// §3.5): everything up to, but not including, Mechanism 1.
type FitOptions struct {
	// ModelEps/ModelDelta set the differential privacy budget of the
	// generative model (§3.5). ModelEps <= 0 trains without noise.
	ModelEps, ModelDelta float64
	// Bucketizer optionally coarsens parent configurations; nil means the
	// metadata's default (no bucketization).
	Bucketizer *dataset.Bucketizer
	// MaxCost caps parent-set complexity (eq. 6; 0 = 128).
	MaxCost float64
	// Backend selects the generative-model backend by registered ID
	// ("" = DefaultBackend, the Bayes net). See Backends for the list.
	Backend string
	// Seed drives the dataset split and any model noise.
	Seed uint64
}

// FittedModel is a learned generative model together with the seed split it
// must be paired with: the reusable half of the pipeline. A serving layer
// fits once and answers many Synthesize calls — with different privacy
// parameters — against the same fitted model. FittedModel is immutable
// after Fit returns and safe for concurrent use.
type FittedModel struct {
	// Backend is the registered ID of the backend that fitted Gen.
	Backend string
	// Gen is the fitted generative model behind the backend interface; all
	// synthesis goes through it.
	Gen GenerativeModel
	// Model is the learned conditional model (eq. 2) when Backend is
	// "bayesnet"; nil for other backends. Kept for compatibility with code
	// written against the Bayes-net-only API.
	Model *Model
	// Structure is the learned dependency structure when Backend is
	// "bayesnet"; nil for other backends.
	Structure *Structure
	// Seeds is the DS split: the only records Mechanism 1 may use as seeds.
	Seeds *Dataset
	// ModelBudget is the (ε, δ) spent learning the model (zero when the
	// model was trained without noise).
	ModelBudget Budget
	// Splits records the sizes of the DT/DP/DS partitions used.
	Splits [3]int

	// scanOnce/scanTab lazily cache the privacy test's scan layout. The
	// table depends only on Seeds and the synthesizer's attribute order —
	// both fixed per fitted model — so one build serves every Mechanism the
	// model answers, whatever its privacy parameters.
	scanOnce sync.Once
	scanTab  *core.ScanTable
}

// Meta returns the schema the model was fitted over.
func (fm *FittedModel) Meta() *Metadata { return fm.Gen.Meta() }

// Describe summarizes the fitted model's learned dependency structure in a
// backend-neutral form.
func (fm *FittedModel) Describe() *ModelDescription { return fm.Gen.Describe() }

// Fit runs the learning half of the §3 pipeline: split the dataset into
// structure/parameter/seed partitions and learn the (optionally DP)
// generative model through the selected backend. The result can serve any
// number of Synthesize calls.
func Fit(data *Dataset, opts FitOptions) (*FittedModel, error) {
	if data.Len() < 10 {
		return nil, fmt.Errorf("sgf: dataset too small (%d records)", data.Len())
	}
	id := opts.Backend
	if id == "" {
		id = DefaultBackend
	}
	be, ok := backend.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("sgf: unknown backend %q (registered: %s)", id, strings.Join(backend.IDs(), ", "))
	}
	bkt := opts.Bucketizer
	if bkt == nil {
		bkt = dataset.NewBucketizer(data.Meta)
	}
	r := rng.New(opts.Seed)

	parts, err := data.SplitFrac(r.Split(), 0.25, 0.25, 0.5)
	if err != nil {
		return nil, err
	}
	dt, dp, ds := parts[0], parts[1], parts[2]

	fm := &FittedModel{Backend: id, Seeds: ds, Splits: [3]int{dt.Len(), dp.Len(), ds.Len()}}
	fm.Gen, fm.ModelBudget, err = be.Fit(backend.FitData{
		Structure:  dt,
		Params:     dp,
		Bkt:        bkt,
		ModelEps:   opts.ModelEps,
		ModelDelta: opts.ModelDelta,
		MaxCost:    opts.MaxCost,
		Seed:       opts.Seed,
		RNG:        r,
	})
	if err != nil {
		return nil, err
	}
	if bm, ok := fm.Gen.(*bayes.Model); ok {
		fm.Model, fm.Structure = bm.M, bm.St
	}
	// Freeze the sampling tables up front: Fit is the expensive once-per-model
	// half of the pipeline, so every Synthesize call against the fitted model
	// serves from the lock-free frozen path. Frozen output is byte-identical
	// to the lazy path (pinned by the determinism and conformance suites), so
	// this changes speed, never bytes.
	if err := fm.Gen.Freeze(0); err != nil {
		return nil, fmt.Errorf("sgf: freezing model: %w", err)
	}
	return fm, nil
}

// SynthOptions parameterizes the release half of the pipeline: Mechanism 1
// over an already fitted model.
type SynthOptions struct {
	// Records is the number of synthetic records to release.
	Records int
	// K is the plausible deniability parameter k ≥ 1 of Definition 1.
	K int
	// Gamma is the indistinguishability ratio γ > 1 of Definition 1.
	Gamma float64
	// Eps0 > 0 selects the randomized Privacy Test 2 (Theorem 1).
	Eps0 float64
	// OmegaLo/OmegaHi give the re-sampled attribute count range (§3.2);
	// both zero means [1, m].
	OmegaLo, OmegaHi int
	// MaxCandidates caps the candidates drawn (0 = 100×Records).
	MaxCandidates int
	// MaxPlausible / MaxCheckPlausible are the §5 early-exit knobs
	// (0 = unlimited).
	MaxPlausible, MaxCheckPlausible int
	// Workers bounds generation parallelism (0 = GOMAXPROCS). By the
	// core.GenerateCtx determinism contract the output does not depend on
	// it.
	Workers int
	// Seed drives all generation randomness.
	Seed uint64
}

// Mechanism builds the Mechanism 1 instance for these options over the
// fitted model.
func (fm *FittedModel) Mechanism(opts SynthOptions) (*Mechanism, error) {
	lo, hi := opts.OmegaLo, opts.OmegaHi
	if lo == 0 && hi == 0 {
		lo, hi = 1, len(fm.Meta().Attrs)
	}
	syn, err := fm.Gen.Synthesizer(lo, hi)
	if err != nil {
		return nil, err
	}
	tc := TestConfig{
		K:                 opts.K,
		Gamma:             opts.Gamma,
		Randomized:        opts.Eps0 > 0,
		Eps0:              opts.Eps0,
		MaxPlausible:      opts.MaxPlausible,
		MaxCheckPlausible: opts.MaxCheckPlausible,
	}
	mech, err := core.NewMechanism(syn, fm.Seeds, tc)
	if err != nil {
		return nil, err
	}
	// Attach the model-wide scan table so per-request generation skips the
	// O(n·m) rebuild. The table keys on the synthesizer's scan order, which
	// is fixed per fitted model; the build is racy-safe behind scanOnce and
	// a nil result (synthesizer with no fixed order) leaves the mechanism on
	// its lazy path.
	fm.scanOnce.Do(func() { fm.scanTab = core.ScanTableFor(syn, fm.Seeds) })
	mech.Scan = fm.scanTab
	return mech, nil
}

// Synthesize releases opts.Records synthetic records from the fitted model
// through Mechanism 1, honouring ctx cancellation.
func (fm *FittedModel) Synthesize(ctx context.Context, opts SynthOptions) (*Dataset, GenStats, error) {
	mech, err := fm.Mechanism(opts)
	if err != nil {
		return nil, GenStats{}, err
	}
	return core.GenerateTargetCtx(ctx, mech, opts.Records, opts.MaxCandidates, opts.Workers, opts.Seed)
}

// SynthesizeStream is Synthesize with incremental delivery: released
// batches are handed to sink as soon as they are available, in
// deterministic order.
func (fm *FittedModel) SynthesizeStream(ctx context.Context, opts SynthOptions, sink func(batch []Record) error) (GenStats, error) {
	mech, err := fm.Mechanism(opts)
	if err != nil {
		return GenStats{}, err
	}
	return core.GenerateTargetStream(ctx, mech, opts.Records, opts.MaxCandidates, opts.Workers, opts.Seed, sink)
}

// SynthesizeReleases produces m multiply-synthetic datasets (the combining-
// rules workload of the partially/fully synthetic literature surveyed by
// Bowen & Liu): release j is exactly an independent Synthesize call with
// seed opts.Seed + j, so releases are reproducible individually and the
// first release is byte-identical to a plain Synthesize with the same
// options. Each release passes the privacy test independently; a tenant's
// ledger must account for all m.
func (fm *FittedModel) SynthesizeReleases(ctx context.Context, opts SynthOptions, m int) ([]*Dataset, []GenStats, error) {
	if m < 1 {
		return nil, nil, fmt.Errorf("sgf: number of releases must be positive (got %d)", m)
	}
	outs := make([]*Dataset, 0, m)
	stats := make([]GenStats, 0, m)
	for j := 0; j < m; j++ {
		ro := opts
		ro.Seed = opts.Seed + uint64(j)
		out, st, err := fm.Synthesize(ctx, ro)
		if err != nil {
			return outs, stats, fmt.Errorf("sgf: release %d of %d: %w", j, m, err)
		}
		outs = append(outs, out)
		stats = append(stats, st)
	}
	return outs, stats, nil
}

// Synthesize runs the full §3 pipeline on a dataset: split into
// structure/parameter/seed partitions, learn the (optionally DP) generative
// model, and release Records synthetics through Mechanism 1 with the
// (randomized) privacy test.
func Synthesize(data *Dataset, opts Options) (*Dataset, *Report, error) {
	return SynthesizeCtx(context.Background(), data, opts)
}

// SynthesizeCtx is Synthesize with cancellation: fitting runs to completion
// (it is not interruptible), generation stops at the next candidate
// boundary once ctx is cancelled.
func SynthesizeCtx(ctx context.Context, data *Dataset, opts Options) (*Dataset, *Report, error) {
	if opts.Records <= 0 {
		return nil, nil, fmt.Errorf("sgf: Records must be positive")
	}
	fm, err := Fit(data, FitOptions{
		ModelEps:   opts.ModelEps,
		ModelDelta: opts.ModelDelta,
		Bucketizer: opts.Bucketizer,
		MaxCost:    opts.MaxCost,
		Backend:    opts.Backend,
		Seed:       opts.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	report := &Report{
		ModelBudget: fm.ModelBudget,
		Structure:   fm.Structure,
		Splits:      fm.Splits,
	}
	sopts := SynthOptions{
		Records:           opts.Records,
		K:                 opts.K,
		Gamma:             opts.Gamma,
		Eps0:              opts.Eps0,
		OmegaLo:           opts.OmegaLo,
		OmegaHi:           opts.OmegaHi,
		MaxPlausible:      opts.MaxPlausible,
		MaxCheckPlausible: opts.MaxCheckPlausible,
		Workers:           opts.Workers,
		Seed:              opts.Seed + 1,
	}
	mech, err := fm.Mechanism(sopts)
	if err != nil {
		return nil, nil, err
	}
	if mech.Test.Randomized {
		if b, ok := mech.ReleaseBudget(1e-6); ok {
			report.ReleaseBudget = b
		}
	}
	out, stats, err := core.GenerateTargetCtx(ctx, mech, sopts.Records, sopts.MaxCandidates, sopts.Workers, sopts.Seed)
	report.Gen = stats
	return out, report, err
}

// LearnStructure re-exports CFS structure learning (§3.3).
func LearnStructure(dt *Dataset, bkt *Bucketizer, cfg StructureConfig) (*Structure, error) {
	return bayesnet.LearnStructure(dt, bkt, cfg)
}

// LearnModel re-exports parameter learning (§3.4).
func LearnModel(dp *Dataset, bkt *Bucketizer, st *Structure, cfg ModelConfig) (*Model, error) {
	return bayesnet.LearnModel(dp, bkt, st, cfg)
}

// NewSeedSynthesizer re-exports the §3.2 synthesizer constructor.
func NewSeedSynthesizer(model *Model, omegaLo, omegaHi int) (*SeedSynthesizer, error) {
	return core.NewSeedSynthesizer(model, omegaLo, omegaHi)
}

// NewMechanism re-exports the Mechanism 1 constructor.
func NewMechanism(syn Synthesizer, seeds *Dataset, test TestConfig) (*Mechanism, error) {
	return core.NewMechanism(syn, seeds, test)
}

// Generate re-exports the parallel generation pipeline.
func Generate(mech *Mechanism, candidates, workers int, seed uint64) (*Dataset, GenStats, error) {
	return core.Generate(mech, core.GenConfig{Candidates: candidates, Workers: workers, Seed: seed})
}

// GenerateTarget re-exports target-count generation.
func GenerateTarget(mech *Mechanism, target, maxCandidates, workers int, seed uint64) (*Dataset, GenStats, error) {
	return core.GenerateTarget(mech, target, maxCandidates, workers, seed)
}

// GenerateTargetCtx re-exports cancellable target-count generation.
func GenerateTargetCtx(ctx context.Context, mech *Mechanism, target, maxCandidates, workers int, seed uint64) (*Dataset, GenStats, error) {
	return core.GenerateTargetCtx(ctx, mech, target, maxCandidates, workers, seed)
}

// GenerateTargetStream re-exports cancellable, incrementally delivered
// target-count generation (see core.GenerateTargetStream).
func GenerateTargetStream(ctx context.Context, mech *Mechanism, target, maxCandidates, workers int, seed uint64, sink func(batch []Record) error) (GenStats, error) {
	return core.GenerateTargetStream(ctx, mech, target, maxCandidates, workers, seed, sink)
}

// ReleaseBudget re-exports the Theorem 1 budget computation: the (ε, δ) of
// one released record for parameters (k, γ, ε0) at trade-off t.
func ReleaseBudget(k int, gamma, eps0 float64, t int) Budget {
	return privacy.ReleaseBudget(k, gamma, eps0, t)
}

// IsPlausiblyDeniable re-exports the Definition 1 verifier.
func IsPlausiblyDeniable(syn Synthesizer, data *Dataset, seed, y Record, k int, gamma float64) bool {
	return core.IsPlausiblyDeniable(syn, data, seed, y, k, gamma)
}
