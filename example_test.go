package sgf_test

import (
	"fmt"
	"log"

	sgf "repro"
	"repro/internal/acs"
)

// ExampleSynthesize demonstrates the one-call pipeline: simulate a small
// census-like dataset and release plausibly-deniable synthetic records.
func ExampleSynthesize() {
	pop := acs.NewPopulation()
	data := pop.Generate(sgf.NewRNG(42), 4000)

	out, report, err := sgf.Synthesize(data, sgf.Options{
		Records:           50,
		K:                 5,
		Gamma:             4,
		OmegaLo:           6,
		OmegaHi:           11,
		MaxCheckPlausible: 1000,
		Workers:           1, // single worker for a deterministic example
		Seed:              7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("released:", out.Len())
	fmt.Println("schema preserved:", out.NumAttrs() == data.NumAttrs())
	fmt.Println("splits cover data:", report.Splits[0]+report.Splits[1]+report.Splits[2] == data.Len())
	// Output:
	// released: 50
	// schema preserved: true
	// splits cover data: true
}

// ExampleReleaseBudget shows the Theorem 1 budget computation for the
// paper's default parameters.
func ExampleReleaseBudget() {
	b := sgf.ReleaseBudget(50, 4, 1, 10)
	fmt.Printf("epsilon: %.3f\n", b.Epsilon)
	fmt.Printf("delta below 1e-9: %v\n", b.Delta < 1e-9)
	// Output:
	// epsilon: 1.336
	// delta below 1e-9: true
}
